(* Optional per-simulation solver introspection.

   One recorder per [Engine.sim] (attached with
   [Engine.set_introspect]), so batched lanes tag their records per
   lane for free — each lane owns its sim, hence its recorder.  Every
   hot-path entry point takes a [t option] and performs exactly one
   match when disabled, the same contract as
   {!Cml_telemetry.Progress.note_step}: the engine stores the option
   once and passes it through, so a disabled simulation pays one load
   and one branch per hook, nothing else.  All O(n) work (delta-norm
   scans, LTE blame scans) happens strictly inside the [Some] arm.

   The recorder only ever *reads* solver state: attaching one must
   not perturb a single bit of the waveform (qcheck-enforced in
   test_introspect.ml).  In particular the LTE accept/reject decision
   stays with [Transient.lte_ok] — the blame scan here recomputes the
   per-node ratios purely for attribution.

   Storage is flat Fbuf columns (ints stored as exact floats), read
   back as typed rows by the analysis accessors at post-mortem
   time. *)

module Fbuf = Cml_numerics.Fbuf

(* dt-timeline cause tags *)
let cause_accept = 0
let cause_breakpoint = 1
let cause_guide = 2
let cause_lte = 3
let cause_newton_fail = 4

let cause_name = function
  | 0 -> "accept"
  | 1 -> "breakpoint"
  | 2 -> "guide-rescue"
  | 3 -> "lte-reject"
  | 4 -> "newton-reject"
  | _ -> "unknown"

(* LU stability-fallback reason codes (mirror
   [Sparse_lu.refactor_failure] without depending on its payload) *)
let lu_small_pivot = 0
let lu_unstable_pivot = 1
let lu_pattern = 2

type t = {
  label : string;
  (* one row per Newton iteration that solved a system *)
  nw_time : Fbuf.t;
  nw_iter : Fbuf.t;
  nw_delta : Fbuf.t;  (* max_i |xn_i - x_i| *)
  nw_worst : Fbuf.t;  (* unknown index attaining the max, -1 if none *)
  nw_jerr : Fbuf.t;  (* junction-limiting error after the load *)
  nw_jworst : Fbuf.t;  (* device index of the worst junction, -1 *)
  (* one row per Newton solve that gave up (homotopy retries included) *)
  nf_time : Fbuf.t;
  nf_worst : Fbuf.t;
  nf_delta : Fbuf.t;
  (* one row per LTE rejection: which node forced the step down *)
  lte_time : Fbuf.t;
  lte_h : Fbuf.t;
  lte_worst : Fbuf.t;
  lte_ratio : Fbuf.t;  (* |x - xpred| / tol at the worst node *)
  lte_cascade : Fbuf.t;  (* consecutive rejections ending here *)
  (* step-size-controller timeline *)
  dt_t : Fbuf.t;
  dt_h : Fbuf.t;
  dt_cause : Fbuf.t;
  (* stability fallbacks to full factorization, by reason *)
  mutable lu_small : int;
  mutable lu_unstable : int;
  mutable lu_mismatch : int;
}

let create ?(label = "") () =
  {
    label;
    nw_time = Fbuf.create ();
    nw_iter = Fbuf.create ();
    nw_delta = Fbuf.create ();
    nw_worst = Fbuf.create ();
    nw_jerr = Fbuf.create ();
    nw_jworst = Fbuf.create ();
    nf_time = Fbuf.create ();
    nf_worst = Fbuf.create ();
    nf_delta = Fbuf.create ();
    lte_time = Fbuf.create ();
    lte_h = Fbuf.create ();
    lte_worst = Fbuf.create ();
    lte_ratio = Fbuf.create ();
    lte_cascade = Fbuf.create ();
    dt_t = Fbuf.create ();
    dt_h = Fbuf.create ();
    dt_cause = Fbuf.create ();
    lu_small = 0;
    lu_unstable = 0;
    lu_mismatch = 0;
  }

let label r = r.label

(* ------------------------------------------------------------------ *)
(* Hot-path notes *)

let note_newton ro ~time ~iter ~x ~xn ~junction_error ~junction_worst =
  match ro with
  | None -> ()
  | Some r ->
      let n = Array.length x in
      let worst = ref (-1) and wd = ref 0.0 in
      for i = 0 to n - 1 do
        let d = Float.abs (xn.(i) -. x.(i)) in
        if d > !wd then begin
          wd := d;
          worst := i
        end
      done;
      Fbuf.push r.nw_time time;
      Fbuf.push r.nw_iter (float_of_int iter);
      Fbuf.push r.nw_delta !wd;
      Fbuf.push r.nw_worst (float_of_int !worst);
      Fbuf.push r.nw_jerr junction_error;
      Fbuf.push r.nw_jworst (float_of_int junction_worst)

(* Blame for a failed solve is the worst unknown of its final
   iteration — already recorded, so just copy it forward (when the
   failure produced no iteration row, e.g. an immediately singular
   system, there is nothing to blame: -1). *)
let note_newton_fail ro ~time =
  match ro with
  | None -> ()
  | Some r ->
      let n = Fbuf.length r.nw_time in
      let worst, delta =
        if n > 0 && Fbuf.get r.nw_time (n - 1) = time then
          (Fbuf.get r.nw_worst (n - 1), Fbuf.get r.nw_delta (n - 1))
        else (-1.0, 0.0)
      in
      Fbuf.push r.nf_time time;
      Fbuf.push r.nf_worst worst;
      Fbuf.push r.nf_delta delta

let note_lte ro ~time ~h ~xpred ~x ~reltol ~abstol ~cascade =
  match ro with
  | None -> ()
  | Some r ->
      let worst = ref (-1) and wratio = ref 0.0 in
      for i = 0 to Array.length xpred - 1 do
        let xp = xpred.(i) and xi = x.(i) in
        let tol = abstol +. (reltol *. Float.max (Float.abs xp) (Float.abs xi)) in
        let ratio = Float.abs (xi -. xp) /. tol in
        if ratio > !wratio then begin
          wratio := ratio;
          worst := i
        end
      done;
      Fbuf.push r.lte_time time;
      Fbuf.push r.lte_h h;
      Fbuf.push r.lte_worst (float_of_int !worst);
      Fbuf.push r.lte_ratio !wratio;
      Fbuf.push r.lte_cascade (float_of_int cascade)

let note_dt ro ~t ~h ~cause =
  match ro with
  | None -> ()
  | Some r ->
      Fbuf.push r.dt_t t;
      Fbuf.push r.dt_h h;
      Fbuf.push r.dt_cause (float_of_int cause)

let note_lu_fallback ro ~reason =
  match ro with
  | None -> ()
  | Some r ->
      if reason = lu_small_pivot then r.lu_small <- r.lu_small + 1
      else if reason = lu_unstable_pivot then r.lu_unstable <- r.lu_unstable + 1
      else r.lu_mismatch <- r.lu_mismatch + 1

(* ------------------------------------------------------------------ *)
(* Analysis accessors (post-mortem time; allocation is fine here) *)

type newton_row = {
  nr_time : float;
  nr_iter : int;
  nr_delta : float;
  nr_worst : int;
  nr_jerr : float;
  nr_jworst : int;
}

let newton_rows r =
  List.init (Fbuf.length r.nw_time) (fun i ->
      {
        nr_time = Fbuf.get r.nw_time i;
        nr_iter = int_of_float (Fbuf.get r.nw_iter i);
        nr_delta = Fbuf.get r.nw_delta i;
        nr_worst = int_of_float (Fbuf.get r.nw_worst i);
        nr_jerr = Fbuf.get r.nw_jerr i;
        nr_jworst = int_of_float (Fbuf.get r.nw_jworst i);
      })

type fail_row = { fr_time : float; fr_worst : int; fr_delta : float }

let fail_rows r =
  List.init (Fbuf.length r.nf_time) (fun i ->
      {
        fr_time = Fbuf.get r.nf_time i;
        fr_worst = int_of_float (Fbuf.get r.nf_worst i);
        fr_delta = Fbuf.get r.nf_delta i;
      })

type lte_row = {
  lr_time : float;
  lr_h : float;
  lr_worst : int;
  lr_ratio : float;
  lr_cascade : int;
}

let lte_rows r =
  List.init (Fbuf.length r.lte_time) (fun i ->
      {
        lr_time = Fbuf.get r.lte_time i;
        lr_h = Fbuf.get r.lte_h i;
        lr_worst = int_of_float (Fbuf.get r.lte_worst i);
        lr_ratio = Fbuf.get r.lte_ratio i;
        lr_cascade = int_of_float (Fbuf.get r.lte_cascade i);
      })

type dt_row = { dr_t : float; dr_h : float; dr_cause : int }

let dt_rows r =
  List.init (Fbuf.length r.dt_t) (fun i ->
      {
        dr_t = Fbuf.get r.dt_t i;
        dr_h = Fbuf.get r.dt_h i;
        dr_cause = int_of_float (Fbuf.get r.dt_cause i);
      })

let lu_fallbacks r = (r.lu_small, r.lu_unstable, r.lu_mismatch)

let newton_failures r = Fbuf.length r.nf_time
