exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* values *)

let suffixes =
  [
    ("t", 1e12);
    ("g", 1e9);
    ("meg", 1e6);
    ("k", 1e3);
    ("m", 1e-3);
    ("u", 1e-6);
    ("n", 1e-9);
    ("p", 1e-12);
    ("f", 1e-15);
  ]

let parse_value token =
  let token = String.lowercase_ascii token in
  let n = String.length token in
  if n = 0 then None
  else begin
    let split_at k = (String.sub token 0 k, String.sub token k (n - k)) in
    (* longest suffix first so "meg" wins over "m" *)
    let rec digits_end k =
      if k >= n then k
      else begin
        match token.[k] with
        | '0' .. '9' | '.' | '-' | '+' -> digits_end (k + 1)
        | 'e' when k > 0 && k + 1 < n && (match token.[k + 1] with '0' .. '9' | '-' | '+' -> true | _ -> false)
          -> digits_end (k + 2)
        | _ -> k
      end
    in
    let k = digits_end 0 in
    if k = 0 then None
    else begin
      let num, suffix = split_at k in
      match float_of_string_opt num with
      | None -> None
      | Some v -> (
          if suffix = "" then Some v
          else
            match List.assoc_opt suffix suffixes with
            | Some mult -> Some (v *. mult)
            | None -> None)
    end
  end

(* a suffix is only used when multiplying back reproduces the exact
   double, so parsing the output always returns the original value *)
let format_value v =
  let rec try_suffixes = function
    | [] -> Printf.sprintf "%.17g" v
    | (s, mult) :: rest ->
        let scaled = v /. mult in
        if Float.abs scaled >= 1.0 && Float.abs scaled < 1000.0
           && Float.round scaled = scaled
           && Float.round scaled *. mult = v
        then Printf.sprintf "%.0f%s" scaled s
        else try_suffixes rest
  in
  if v = 0.0 then "0"
  else if Float.abs v >= 1.0 && Float.abs v < 1000.0 then Printf.sprintf "%.17g" v
  else try_suffixes suffixes

(* ------------------------------------------------------------------ *)
(* printing *)

let waveform_to_string = function
  | Waveform.Dc v -> Printf.sprintf "DC %s" (format_value v)
  | Waveform.Pulse { v1; v2; delay; rise; fall; width; period } ->
      Printf.sprintf "PULSE(%s %s %s %s %s %s %s)" (format_value v1) (format_value v2)
        (format_value delay) (format_value rise) (format_value fall) (format_value width)
        (format_value period)
  | Waveform.Sine { offset; ampl; freq; delay; phase } ->
      Printf.sprintf "SIN(%s %s %s %s %s)" (format_value offset) (format_value ampl)
        (format_value freq) (format_value delay) (format_value phase)
  | Waveform.Pwl knots ->
      let pairs =
        Array.to_list
          (Array.map (fun (t, v) -> Printf.sprintf "%s %s" (format_value t) (format_value v)) knots)
      in
      Printf.sprintf "PWL(%s)" (String.concat " " pairs)

let bjt_params (m : Models.bjt) =
  let d = Models.default_bjt in
  let p name v dv = if v <> dv then [ Printf.sprintf "%s=%s" name (format_value v) ] else [] in
  String.concat " "
    (p "IS" m.Models.q_is d.Models.q_is
    @ p "BF" m.Models.q_bf d.Models.q_bf
    @ p "BR" m.Models.q_br d.Models.q_br
    @ p "CJE" m.Models.q_cje d.Models.q_cje
    @ p "CJC" m.Models.q_cjc d.Models.q_cjc)

let diode_params (m : Models.diode) =
  let d = Models.default_diode in
  let p name v dv = if v <> dv then [ Printf.sprintf "%s=%s" name (format_value v) ] else [] in
  String.concat " "
    (p "IS" m.Models.d_is d.Models.d_is
    @ p "N" m.Models.d_n d.Models.d_n
    @ p "CJ" m.Models.d_cj d.Models.d_cj)

let to_string net =
  let b = Buffer.create 4096 in
  let node nd = Netlist.node_name net nd in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "* netlist exported by cml-dft";
  Netlist.iter_devices net (fun d ->
      match d with
      | Netlist.Resistor { name; n1; n2; r } ->
          line "R %s %s %s %s" name (node n1) (node n2) (format_value r)
      | Netlist.Capacitor { name; n1; n2; c } ->
          line "C %s %s %s %s" name (node n1) (node n2) (format_value c)
      | Netlist.Diode { name; anode; cathode; model } ->
          let params = diode_params model in
          line "D %s %s %s%s" name (node anode) (node cathode)
            (if params = "" then "" else " " ^ params)
      | Netlist.Bjt { name; collector; base; emitters; model } ->
          let params = bjt_params model in
          line "Q %s %s %s %s%s" name (node collector) (node base)
            (String.concat " " (Array.to_list (Array.map node emitters)))
            (if params = "" then "" else " " ^ params)
      | Netlist.Vsource { name; npos; nneg; wave } ->
          line "V %s %s %s %s" name (node npos) (node nneg) (waveform_to_string wave)
      | Netlist.Isource { name; npos; nneg; wave } ->
          line "I %s %s %s %s" name (node npos) (node nneg) (waveform_to_string wave)
      | Netlist.Vcvs { name; npos; nneg; cpos; cneg; gain } ->
          line "E %s %s %s %s %s %s" name (node npos) (node nneg) (node cpos) (node cneg)
            (format_value gain)
      | Netlist.Vccs { name; npos; nneg; cpos; cneg; gm } ->
          line "G %s %s %s %s %s %s" name (node npos) (node nneg) (node cpos) (node cneg)
            (format_value gm));
  Buffer.add_string b ".end\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing *)

(* split into logical lines, folding '+' continuations, stripping
   comments; returns (line_number, tokens) *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment s =
    match String.index_opt s ';' with Some i -> String.sub s 0 i | None -> s
  in
  let numbered = List.mapi (fun i s -> (i + 1, strip_comment s)) raw in
  let is_blank s = String.trim s = "" in
  let is_comment s =
    let t = String.trim s in
    String.length t > 0 && t.[0] = '*'
  in
  let folded =
    List.fold_left
      (fun acc (n, s) ->
        if is_blank s || is_comment s then acc
        else begin
          let t = String.trim s in
          if String.length t > 0 && t.[0] = '+' then begin
            match acc with
            | (n0, s0) :: rest -> (n0, s0 ^ " " ^ String.sub t 1 (String.length t - 1)) :: rest
            | [] -> fail n "continuation line with nothing to continue"
          end
          else (n, t) :: acc
        end)
      [] numbered
  in
  List.rev folded

(* tokenize one card: parentheses groups like PULSE(..) become a
   function token plus its arguments *)
let tokenize line s =
  let n = String.length s in
  let out = ref [] in
  let buf = Stdlib.Buffer.create 16 in
  let flush () =
    if Stdlib.Buffer.length buf > 0 then begin
      out := Stdlib.Buffer.contents buf :: !out;
      Stdlib.Buffer.clear buf
    end
  in
  let rec go i =
    if i >= n then flush ()
    else begin
      match s.[i] with
      | ' ' | '\t' | ',' | '\r' ->
          flush ();
          go (i + 1)
      | '(' | ')' ->
          flush ();
          out := String.make 1 s.[i] :: !out;
          go (i + 1)
      | c ->
          Stdlib.Buffer.add_char buf c;
          go (i + 1)
    end
  in
  go 0;
  if !out = [] then fail line "empty card";
  List.rev !out

let value_exn line token =
  match parse_value token with Some v -> v | None -> fail line "bad numeric value %S" token

let parse_params line tokens =
  List.map
    (fun t ->
      match String.index_opt t '=' with
      | None -> fail line "expected PARAM=VALUE, got %S" t
      | Some i ->
          let key = String.uppercase_ascii (String.sub t 0 i) in
          let v = value_exn line (String.sub t (i + 1) (String.length t - i - 1)) in
          (key, v))
    tokens

let bjt_of_params line params =
  List.fold_left
    (fun m (k, v) ->
      match k with
      | "IS" -> { m with Models.q_is = v }
      | "BF" -> { m with Models.q_bf = v }
      | "BR" -> { m with Models.q_br = v }
      | "CJE" -> { m with Models.q_cje = v }
      | "CJC" -> { m with Models.q_cjc = v }
      | _ -> fail line "unknown BJT parameter %S" k)
    Models.default_bjt params

let diode_of_params line params =
  List.fold_left
    (fun m (k, v) ->
      match k with
      | "IS" -> { m with Models.d_is = v }
      | "N" -> { m with Models.d_n = v }
      | "CJ" -> { m with Models.d_cj = v }
      | _ -> fail line "unknown diode parameter %S" k)
    Models.default_diode params

(* waveform grammar: DC v | PULSE ( 7 values ) | SIN ( 5 ) | PWL ( 2k ) *)
let parse_waveform line tokens =
  let fn_args name rest =
    match rest with
    | "(" :: more ->
        let rec collect acc = function
          | ")" :: tail -> (List.rev acc, tail)
          | t :: tail -> collect (value_exn line t :: acc) tail
          | [] -> fail line "unterminated %s(...)" name
        in
        collect [] more
    | _ -> fail line "expected '(' after %s" name
  in
  match tokens with
  | [ "DC"; v ] | [ "dc"; v ] | [ v ] -> Waveform.Dc (value_exn line v)
  | kind :: rest -> begin
      match String.uppercase_ascii kind with
      | "PULSE" -> begin
          match fn_args "PULSE" rest with
          | [ v1; v2; delay; rise; fall; width; period ], [] ->
              Waveform.Pulse { v1; v2; delay; rise; fall; width; period }
          | _ -> fail line "PULSE needs 7 values"
        end
      | "SIN" | "SINE" -> begin
          match fn_args "SIN" rest with
          | [ offset; ampl; freq; delay; phase ], [] ->
              Waveform.Sine { offset; ampl; freq; delay; phase }
          | _ -> fail line "SIN needs 5 values"
        end
      | "PWL" -> begin
          match fn_args "PWL" rest with
          | values, [] ->
              let rec pairs = function
                | [] -> []
                | t :: v :: more -> (t, v) :: pairs more
                | [ _ ] -> fail line "PWL needs an even number of values"
              in
              Waveform.Pwl (Array.of_list (pairs values))
          | _ -> fail line "bad PWL"
        end
      | _ -> fail line "unknown source waveform %S" kind
    end
  | [] -> fail line "missing source waveform"

let of_string text =
  let net = Netlist.create () in
  let node name = Netlist.node net name in
  let parse_card (line, s) =
    let tokens = tokenize line s in
    match tokens with
    | [ ".end" ] | [ ".END" ] -> ()
    | kind :: name :: rest -> begin
        match (String.uppercase_ascii kind, rest) with
        | "R", [ n1; n2; v ] -> Netlist.resistor net ~name (node n1) (node n2) (value_exn line v)
        | "C", [ n1; n2; v ] -> Netlist.capacitor net ~name (node n1) (node n2) (value_exn line v)
        | "D", a :: k :: params ->
            Netlist.diode net ~name
              ~model:(diode_of_params line (parse_params line params))
              ~anode:(node a) ~cathode:(node k) ()
        | "Q", c :: b :: rest when List.length rest >= 1 ->
            (* nodes until the first PARAM=VALUE token are emitters *)
            let is_param t = String.contains t '=' in
            let emitters = List.filter (fun t -> not (is_param t)) rest in
            let params = List.filter is_param rest in
            if emitters = [] then fail line "BJT %s needs at least one emitter" name;
            Netlist.bjt_multi net ~name
              ~model:(bjt_of_params line (parse_params line params))
              ~c:(node c) ~b:(node b)
              ~emitters:(Array.of_list (List.map node emitters))
              ()
        | "V", p :: n :: wf ->
            Netlist.vsource net ~name ~pos:(node p) ~neg:(node n) (parse_waveform line wf)
        | "I", p :: n :: wf ->
            Netlist.isource net ~name ~pos:(node p) ~neg:(node n) (parse_waveform line wf)
        | "E", [ p; n; cp; cn; g ] ->
            Netlist.vcvs net ~name ~pos:(node p) ~neg:(node n) ~cpos:(node cp) ~cneg:(node cn)
              (value_exn line g)
        | "G", [ p; n; cp; cn; g ] ->
            Netlist.vccs net ~name ~pos:(node p) ~neg:(node n) ~cpos:(node cp) ~cneg:(node cn)
              (value_exn line g)
        | ("R" | "C" | "D" | "Q" | "V" | "I" | "E" | "G"), _ ->
            fail line "wrong number of fields for a %s card" kind
        | _ -> fail line "unknown card type %S" kind
      end
    | _ -> fail line "malformed card"
  in
  (try List.iter parse_card (logical_lines text)
   with Invalid_argument msg -> fail 0 "%s" msg);
  net

let write_file ~path net =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string net))

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
