type node = int

let gnd = 0

type device =
  | Resistor of { name : string; n1 : node; n2 : node; r : float }
  | Capacitor of { name : string; n1 : node; n2 : node; c : float }
  | Diode of { name : string; anode : node; cathode : node; model : Models.diode }
  | Bjt of {
      name : string;
      collector : node;
      base : node;
      emitters : node array;
      model : Models.bjt;
    }
  | Vsource of { name : string; npos : node; nneg : node; wave : Waveform.t }
  | Isource of { name : string; npos : node; nneg : node; wave : Waveform.t }
  | Vcvs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gain : float }
  | Vccs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gm : float }

type t = {
  mutable devs : device array;
  mutable ndev : int;
  node_ids : (string, int) Hashtbl.t;
  mutable node_names : string array;
  mutable nnodes : int;
  dev_index : (string, int) Hashtbl.t;
  mutable gensym : int;
}

let create () =
  let t =
    {
      devs = Array.make 16 (Resistor { name = ""; n1 = 0; n2 = 0; r = 0.0 });
      ndev = 0;
      node_ids = Hashtbl.create 64;
      node_names = Array.make 16 "";
      nnodes = 1;
      dev_index = Hashtbl.create 64;
      gensym = 0;
    }
  in
  Hashtbl.replace t.node_ids "0" 0;
  t.node_names.(0) <- "0";
  t

let copy t =
  {
    devs = Array.copy t.devs;
    ndev = t.ndev;
    node_ids = Hashtbl.copy t.node_ids;
    node_names = Array.copy t.node_names;
    nnodes = t.nnodes;
    dev_index = Hashtbl.copy t.dev_index;
    gensym = t.gensym;
  }

let node t name =
  match Hashtbl.find_opt t.node_ids name with
  | Some id -> id
  | None ->
      let id = t.nnodes in
      if id = Array.length t.node_names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.node_names 0 bigger 0 id;
        t.node_names <- bigger
      end;
      t.node_names.(id) <- name;
      t.nnodes <- id + 1;
      Hashtbl.replace t.node_ids name id;
      id

let fresh_node t prefix =
  let rec try_next () =
    t.gensym <- t.gensym + 1;
    let name = Printf.sprintf "%s#%d" prefix t.gensym in
    if Hashtbl.mem t.node_ids name then try_next () else node t name
  in
  try_next ()

let node_count t = t.nnodes

let node_name t id =
  assert (id >= 0 && id < t.nnodes);
  t.node_names.(id)

let find_node t name = Hashtbl.find_opt t.node_ids name

let device_name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Diode { name; _ }
  | Bjt { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vcvs { name; _ }
  | Vccs { name; _ } -> name

let add_device t d =
  let name = device_name d in
  if Hashtbl.mem t.dev_index name then invalid_arg ("duplicate device name: " ^ name);
  if t.ndev = Array.length t.devs then begin
    let bigger = Array.make (2 * t.ndev) d in
    Array.blit t.devs 0 bigger 0 t.ndev;
    t.devs <- bigger
  end;
  t.devs.(t.ndev) <- d;
  Hashtbl.replace t.dev_index name t.ndev;
  t.ndev <- t.ndev + 1

let resistor t ~name n1 n2 r = add_device t (Resistor { name; n1; n2; r })

let capacitor t ~name n1 n2 c = add_device t (Capacitor { name; n1; n2; c })

let diode t ~name ?(model = Models.default_diode) ~anode ~cathode () =
  add_device t (Diode { name; anode; cathode; model })

let bjt t ~name ?(model = Models.default_bjt) ~c ~b ~e () =
  add_device t (Bjt { name; collector = c; base = b; emitters = [| e |]; model })

let bjt_multi t ~name ?(model = Models.default_bjt) ~c ~b ~emitters () =
  if Array.length emitters = 0 then invalid_arg "bjt_multi: no emitters";
  add_device t (Bjt { name; collector = c; base = b; emitters = Array.copy emitters; model })

let vsource t ~name ~pos ~neg wave = add_device t (Vsource { name; npos = pos; nneg = neg; wave })

let isource t ~name ~pos ~neg wave = add_device t (Isource { name; npos = pos; nneg = neg; wave })

let vcvs t ~name ~pos ~neg ~cpos ~cneg gain =
  add_device t (Vcvs { name; npos = pos; nneg = neg; cpos; cneg; gain })

let vccs t ~name ~pos ~neg ~cpos ~cneg gm =
  add_device t (Vccs { name; npos = pos; nneg = neg; cpos; cneg; gm })

let device_count t = t.ndev

let devices t = Array.to_list (Array.sub t.devs 0 t.ndev)

let iter_devices t f =
  for i = 0 to t.ndev - 1 do
    f t.devs.(i)
  done

let get_device t name =
  match Hashtbl.find_opt t.dev_index name with
  | Some i -> t.devs.(i)
  | None -> raise Not_found

let mem_device t name = Hashtbl.mem t.dev_index name

let set_device t name d =
  match Hashtbl.find_opt t.dev_index name with
  | None -> raise Not_found
  | Some i ->
      let new_name = device_name d in
      if new_name <> name && Hashtbl.mem t.dev_index new_name then
        invalid_arg ("duplicate device name: " ^ new_name);
      Hashtbl.remove t.dev_index name;
      Hashtbl.replace t.dev_index new_name i;
      t.devs.(i) <- d

let remove_device t name =
  match Hashtbl.find_opt t.dev_index name with
  | None -> raise Not_found
  | Some i ->
      Hashtbl.remove t.dev_index name;
      (* shift the tail down to keep insertion order contiguous *)
      for k = i to t.ndev - 2 do
        t.devs.(k) <- t.devs.(k + 1);
        Hashtbl.replace t.dev_index (device_name t.devs.(k)) k
      done;
      t.ndev <- t.ndev - 1

let device_terminals = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } -> [ ("1", n1); ("2", n2) ]
  | Diode { anode; cathode; _ } -> [ ("a", anode); ("k", cathode) ]
  | Bjt { collector; base; emitters; _ } ->
      let em =
        if Array.length emitters = 1 then [ ("e", emitters.(0)) ]
        else Array.to_list (Array.mapi (fun i e -> (Printf.sprintf "e%d" i, e)) emitters)
      in
      ("c", collector) :: ("b", base) :: em
  | Vsource { npos; nneg; _ } | Isource { npos; nneg; _ } -> [ ("p", npos); ("n", nneg) ]
  | Vcvs { npos; nneg; cpos; cneg; _ } | Vccs { npos; nneg; cpos; cneg; _ } ->
      [ ("p", npos); ("n", nneg); ("cp", cpos); ("cn", cneg) ]

let rewire_terminal t ~dev ~terminal new_node =
  let d = get_device t dev in
  let rewired =
    match (d, terminal) with
    | Resistor r, "1" -> Resistor { r with n1 = new_node }
    | Resistor r, "2" -> Resistor { r with n2 = new_node }
    | Capacitor c, "1" -> Capacitor { c with n1 = new_node }
    | Capacitor c, "2" -> Capacitor { c with n2 = new_node }
    | Diode dd, "a" -> Diode { dd with anode = new_node }
    | Diode dd, "k" -> Diode { dd with cathode = new_node }
    | Bjt q, "c" -> Bjt { q with collector = new_node }
    | Bjt q, "b" -> Bjt { q with base = new_node }
    | Bjt q, "e" when Array.length q.emitters = 1 ->
        Bjt { q with emitters = [| new_node |] }
    | Bjt q, term
      when String.length term > 1 && term.[0] = 'e'
           && int_of_string_opt (String.sub term 1 (String.length term - 1)) <> None ->
        let i = int_of_string (String.sub term 1 (String.length term - 1)) in
        if i < 0 || i >= Array.length q.emitters then raise Not_found;
        let emitters = Array.copy q.emitters in
        emitters.(i) <- new_node;
        Bjt { q with emitters }
    | Vsource v, "p" -> Vsource { v with npos = new_node }
    | Vsource v, "n" -> Vsource { v with nneg = new_node }
    | Isource v, "p" -> Isource { v with npos = new_node }
    | Isource v, "n" -> Isource { v with nneg = new_node }
    | Vcvs v, "p" -> Vcvs { v with npos = new_node }
    | Vcvs v, "n" -> Vcvs { v with nneg = new_node }
    | Vcvs v, "cp" -> Vcvs { v with cpos = new_node }
    | Vcvs v, "cn" -> Vcvs { v with cneg = new_node }
    | Vccs v, "p" -> Vccs { v with npos = new_node }
    | Vccs v, "n" -> Vccs { v with nneg = new_node }
    | Vccs v, "cp" -> Vccs { v with cpos = new_node }
    | Vccs v, "cn" -> Vccs { v with cneg = new_node }
    | ( ( Resistor _ | Capacitor _ | Diode _ | Bjt _ | Vsource _ | Isource _ | Vcvs _
        | Vccs _ ),
        _ ) -> raise Not_found
  in
  set_device t dev rewired
