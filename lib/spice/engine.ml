type solver_kind = Dense_solver | Sparse_solver | Auto

type options = {
  reltol : float;
  vntol : float;
  abstol : float;
  gmin : float;
  max_iter : int;
  solver : solver_kind;
  bypass : bool;
  lte_reltol_factor : float;
  lte_abstol : float;
}

let default_options =
  {
    reltol = 1e-4;
    vntol = 1e-6;
    abstol = 1e-12;
    gmin = 1e-12;
    max_iter = 100;
    solver = Auto;
    bypass = true;
    lte_reltol_factor = 30.0;
    lte_abstol = 1e-4;
  }

exception No_convergence of string

type junction = { mutable v_last : float }

(* SPICE3-style bypass caches: the stamps a junction device produced
   at its last full evaluation, plus the (limited) junction voltages
   they were computed at.  When the next load finds every junction of
   the device within a safety-scaled convergence tolerance of the
   cached voltages, the exponentials and their derivatives are skipped
   and the cached stamps are replayed verbatim. *)
type dcache = {
  mutable d_valid : bool;
  mutable d_v : float;  (** limited junction voltage of the cached stamps *)
  mutable d_g : float;
  mutable d_ieq : float;
}

type bcache = {
  mutable b_valid : bool;
  mutable b_vbe : float;
  mutable b_vbc : float;
  mutable g_cb : float;
  mutable g_cc : float;
  mutable g_ce : float;
  mutable g_bb : float;
  mutable g_bc : float;
  mutable g_be : float;
  mutable g_eb : float;
  mutable g_ec : float;
  mutable g_ee : float;
  mutable i_c : float;
  mutable i_b : float;
  mutable i_e : float;
}

type sdev =
  | SRes of { i : int; j : int; g : float }
  | SCap of { i : int; j : int; c : float; mutable vprev : float; mutable iprev : float }
  | SDiode of { a : int; k : int; m : Models.diode; js : junction; dc : dcache }
  | SBjt of {
      name : string;
      c : int;
      b : int;
      e : int;
      m : Models.bjt;
      jbe : junction;
      jbc : junction;
      bc : bcache;
    }
  | SVsrc of { p : int; n : int; br : int; w : Waveform.t }
  | SIsrc of { p : int; n : int; w : Waveform.t }
  | SVcvs of { p : int; n : int; cp : int; cn : int; br : int; gain : float }
  | SVccs of { p : int; n : int; cp : int; cn : int; gm : float }

type sparse_backend = {
  trip : Cml_numerics.Sparse.triplet;
  mutable pat : Cml_numerics.Sparse.pattern option;
  mutable count : int;
  mutable lu : Cml_numerics.Sparse_lu.factor option;
      (** factor of the previous solve, kept for numeric-only
          refactorization while the Jacobian pattern and pivot
          stability allow it *)
  mutable symbolic : int;  (** full factorizations performed *)
  mutable numeric : int;  (** numeric-only refactorizations *)
  mutable shared : int;  (** symbolic analyses adopted from a donor sim *)
  mutable donor : Cml_numerics.Sparse_lu.factor option;
      (** a structurally identical sim's factor offered via
          {!share_symbolic}; tried once before the first full
          factorization *)
  mutable sstamp : int -> int -> float -> unit;
      (** prebuilt stamping closure: appends triplet entries until the
          pattern is compressed, then overwrites values in entry
          order — no per-load closure allocation *)
}

type backend =
  | BDense of { m : Cml_numerics.Dense.t; dws : Cml_numerics.Dense.ws;
                dstamp : int -> int -> float -> unit }
  | BSparse of sparse_backend

type sim = {
  opts : options;
  nv : int;  (** node-voltage unknowns *)
  nunk : int;
  sdevs : sdev array;
  branches : (string, int) Hashtbl.t;
  backend : backend;
  rhs : float array;
  ws_x : float array;  (** Newton workspace: current iterate *)
  ws_xnew : float array;  (** Newton workspace: linear-solve output *)
  mutable junction_error : float;
      (** largest |v_solution - v_limited| over all junctions during
          the last load; convergence requires this to vanish, or the
          slow creep of [pnjlim] could be mistaken for a fixed point *)
  mutable junction_worst : int;
      (** device index attaining [junction_error], -1 when no junction
          was limited during the last load *)
  mutable n_newton_iters : int;
  (* device loads and bypass-cache hits, attributed per device class *)
  mutable n_diode_loads : int;
  mutable n_diode_bypassed : int;
  mutable n_bjt_loads : int;
  mutable n_bjt_bypassed : int;
  (* stability fallbacks to a full factorization, by reason *)
  mutable n_fb_small_pivot : int;
  mutable n_fb_unstable_pivot : int;
  mutable n_fb_pattern : int;
  mutable introspect : Introspect.t option;
      (** optional solver-introspection recorder; [None] costs one
          load and one branch per hook (see {!Introspect}) *)
  (* Jacobian-reuse tracking.  A load whose junction devices all
     replayed cached stamps, with the same integration coefficient and
     gshunt as the previous load, assembled a matrix bit-identical to
     the previous one — so the previous factorization can be reused,
     and if time/srcscale/trap also match within one Newton call, the
     whole linear system is identical and the solve can be skipped. *)
  mutable n_full_evals : int;  (** junction full evaluations in the last load *)
  mutable rt_loaded : bool;  (** at least one [load] since compile / invalidation *)
  mutable rt_have_factor : bool;
      (** the backend factor matches the matrix of the last factored load *)
  mutable rt_matrix_unchanged : bool;  (** last load's matrix = previous load's *)
  mutable rt_system_identical : bool;  (** last load's matrix {e and} RHS = previous load's *)
  mutable rt_geq : float;  (** [Dcop] is encoded as 0.0; a [Tran] geq is always > 0 *)
  mutable rt_gshunt : float;
  mutable rt_time : float;
  mutable rt_srcscale : float;
  mutable rt_trap : bool;
  mutable n_reused_factors : int;
  mutable n_skipped_solves : int;
}

type integ = Dcop | Tran of { geq : float; trap : bool }

let node_unknown nd = nd - 1

let voltage x nd = if nd = 0 then 0.0 else x.(nd - 1)

let unknown_count sim = sim.nunk

let node_unknowns sim = sim.nv

let options sim = sim.opts

let branch_unknown sim name =
  match Hashtbl.find_opt sim.branches name with Some i -> i | None -> raise Not_found

let dcache_create () = { d_valid = false; d_v = 0.0; d_g = 0.0; d_ieq = 0.0 }

let bcache_create () =
  {
    b_valid = false;
    b_vbe = 0.0;
    b_vbc = 0.0;
    g_cb = 0.0;
    g_cc = 0.0;
    g_ce = 0.0;
    g_bb = 0.0;
    g_bc = 0.0;
    g_be = 0.0;
    g_eb = 0.0;
    g_ec = 0.0;
    g_ee = 0.0;
    i_c = 0.0;
    i_b = 0.0;
    i_e = 0.0;
  }

let compile ?(options = default_options) net =
  let nv = Netlist.node_count net - 1 in
  let sdevs = ref [] in
  let branches = Hashtbl.create 8 in
  let nbranch = ref 0 in
  let u = node_unknown in
  let emit d = sdevs := d :: !sdevs in
  let emit_cap i j c = if c > 0.0 then emit (SCap { i; j; c; vprev = 0.0; iprev = 0.0 }) in
  let compile_device = function
    | Netlist.Resistor { n1; n2; r; _ } ->
        if r <= 0.0 then invalid_arg "non-positive resistance";
        emit (SRes { i = u n1; j = u n2; g = 1.0 /. r })
    | Netlist.Capacitor { n1; n2; c; _ } -> emit_cap (u n1) (u n2) c
    | Netlist.Diode { anode; cathode; model; _ } ->
        emit
          (SDiode
             {
               a = u anode;
               k = u cathode;
               m = model;
               js = { v_last = 0.0 };
               dc = dcache_create ();
             });
        emit_cap (u anode) (u cathode) model.Models.d_cj
    | Netlist.Bjt { name; collector; base; emitters; model } ->
        Array.iteri
          (fun k e ->
            let name = if Array.length emitters = 1 then name else Printf.sprintf "%s#e%d" name k in
            emit
              (SBjt
                 {
                   name;
                   c = u collector;
                   b = u base;
                   e = u e;
                   m = model;
                   jbe = { v_last = 0.0 };
                   jbc = { v_last = 0.0 };
                   bc = bcache_create ();
                 });
            emit_cap (u base) (u e) model.Models.q_cje;
            emit_cap (u base) (u collector) model.Models.q_cjc)
          emitters
    | Netlist.Vsource { name; npos; nneg; wave } ->
        let br = nv + !nbranch in
        incr nbranch;
        Hashtbl.replace branches name br;
        emit (SVsrc { p = u npos; n = u nneg; br; w = wave })
    | Netlist.Isource { npos; nneg; wave; _ } ->
        emit (SIsrc { p = u npos; n = u nneg; w = wave })
    | Netlist.Vcvs { name; npos; nneg; cpos; cneg; gain } ->
        let br = nv + !nbranch in
        incr nbranch;
        Hashtbl.replace branches name br;
        emit (SVcvs { p = u npos; n = u nneg; cp = u cpos; cn = u cneg; br; gain })
    | Netlist.Vccs { npos; nneg; cpos; cneg; gm; _ } ->
        emit (SVccs { p = u npos; n = u nneg; cp = u cpos; cn = u cneg; gm })
  in
  Netlist.iter_devices net compile_device;
  let nunk = nv + !nbranch in
  let use_sparse =
    match options.solver with
    | Dense_solver -> false
    | Sparse_solver -> true
    | Auto -> nunk > 60
  in
  let backend =
    if use_sparse then begin
      let sp =
        {
          trip = Cml_numerics.Sparse.triplet_create nunk;
          pat = None;
          count = 0;
          lu = None;
          symbolic = 0;
          numeric = 0;
          shared = 0;
          donor = None;
          sstamp = (fun _ _ _ -> ());
        }
      in
      sp.sstamp <-
        (fun i j v -> if i >= 0 && j >= 0 then Cml_numerics.Sparse.add sp.trip i j v);
      BSparse sp
    end
    else begin
      let m = Cml_numerics.Dense.create nunk in
      BDense
        {
          m;
          dws = Cml_numerics.Dense.ws nunk;
          dstamp = (fun i j v -> if i >= 0 && j >= 0 then Cml_numerics.Dense.add_entry m i j v);
        }
    end
  in
  {
    opts = options;
    nv;
    nunk;
    sdevs = Array.of_list (List.rev !sdevs);
    branches;
    backend;
    rhs = Array.make nunk 0.0;
    ws_x = Array.make nunk 0.0;
    ws_xnew = Array.make nunk 0.0;
    junction_error = 0.0;
    junction_worst = -1;
    n_newton_iters = 0;
    n_diode_loads = 0;
    n_diode_bypassed = 0;
    n_bjt_loads = 0;
    n_bjt_bypassed = 0;
    n_fb_small_pivot = 0;
    n_fb_unstable_pivot = 0;
    n_fb_pattern = 0;
    introspect = None;
    n_full_evals = 0;
    rt_loaded = false;
    rt_have_factor = false;
    rt_matrix_unchanged = false;
    rt_system_identical = false;
    rt_geq = nan;
    rt_gshunt = nan;
    rt_time = nan;
    rt_srcscale = nan;
    rt_trap = false;
    n_reused_factors = 0;
    n_skipped_solves = 0;
  }

(* ------------------------------------------------------------------ *)
(* Assembly.

   The entry *sequence* produced by [load] is identical on every call
   (same devices, same order, zero-valued entries included; a bypassed
   device replays exactly the stamps of its full evaluation), which is
   what lets the sparse backend compress the pattern once and then
   only refresh numeric values. *)

let[@inline] vof x i = if i < 0 then 0.0 else x.(i)

let[@inline] inject rhs i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v

let[@inline] stamp_conductance stamp i j g =
  stamp i i g;
  stamp j j g;
  stamp i j (-.g);
  stamp j i (-.g)

(* Safety factor applied to the reltol/vntol convergence tolerance
   before it is used as the bypass threshold: a bypassed device's
   stamps are stale by at most the threshold, so the fixed point the
   solver finds can be off by the same order — keeping the threshold
   a decade under the convergence tolerance keeps the node-voltage
   deviation between bypass-on and bypass-off runs well inside
   10 x vntol (asserted by a property test). *)
let bypass_safety = 0.1

let[@inline] bypass_close opts vnew vcache =
  Float.abs (vnew -. vcache)
  <= bypass_safety
     *. ((opts.reltol *. Float.max (Float.abs vnew) (Float.abs vcache)) +. opts.vntol)

(* Assembly core, parameterised on the matrix stamp: [load] targets
   the compiled backend, [ac_system] a triplet collector.  [stamp]
   receives raw unknown indices and must ignore negative (ground)
   ones itself.  [bypass] enables the device-bypass fast path (off for
   the AC linearisation, which wants the exact Jacobian).  Apart from
   the [stamp] closure itself — prebuilt per backend — the hot path
   allocates nothing. *)
let assemble sim ~x ~time ~integ ~srcscale ~gshunt ~bypass ~stamp =
  let rhs = sim.rhs in
  Array.fill rhs 0 sim.nunk 0.0;
  let opts = sim.opts in
  let gmin = opts.gmin in
  let nvt = Models.boltzmann_vt in
  sim.junction_error <- 0.0;
  sim.junction_worst <- -1;
  sim.n_full_evals <- 0;
  (* gshunt diagonal for every node unknown: also guarantees a
     structurally non-empty diagonal for the sparse pattern *)
  for i = 0 to sim.nv - 1 do
    stamp i i gshunt
  done;
  let sdevs = sim.sdevs in
  for di = 0 to Array.length sdevs - 1 do
    match sdevs.(di) with
    | SRes { i; j; g } -> stamp_conductance stamp i j g
    | SCap { i; j; c; vprev; iprev } ->
        let g, irhs =
          match integ with
          | Dcop -> (0.0, 0.0)
          | Tran { geq; trap } ->
              let g = geq *. c in
              (g, (g *. vprev) +. if trap then iprev else 0.0)
        in
        stamp_conductance stamp i j g;
        inject rhs i irhs;
        inject rhs j (-.irhs)
    | SDiode { a; k; m; js; dc } ->
        sim.n_diode_loads <- sim.n_diode_loads + 1;
        let vnew = vof x a -. vof x k in
        if bypass && dc.d_valid && bypass_close opts vnew dc.d_v then begin
          sim.n_diode_bypassed <- sim.n_diode_bypassed + 1;
          stamp_conductance stamp a k dc.d_g;
          inject rhs a dc.d_ieq;
          inject rhs k (-.dc.d_ieq)
        end
        else begin
          sim.n_full_evals <- sim.n_full_evals + 1;
          let n_nvt = m.Models.d_n *. nvt in
          let vlim =
            Models.pnjlim ~vnew ~vold:js.v_last ~nvt:n_nvt
              ~vcrit:(Models.vcrit ~is:m.Models.d_is ~nvt:n_nvt)
          in
          js.v_last <- vlim;
          let err = Float.abs (vnew -. vlim) in
          if err > sim.junction_error then begin
            sim.junction_error <- err;
            sim.junction_worst <- di
          end;
          let id, gd = Models.junction_current ~is:m.Models.d_is ~nvt:n_nvt vlim in
          let g = gd +. gmin and i0 = id +. (gmin *. vlim) in
          stamp_conductance stamp a k g;
          let ieq = (g *. vlim) -. i0 in
          inject rhs a ieq;
          inject rhs k (-.ieq);
          dc.d_valid <- true;
          dc.d_v <- vlim;
          dc.d_g <- g;
          dc.d_ieq <- ieq
        end
    | SBjt { c; b; e; m; jbe; jbc; bc; name = _ } ->
        sim.n_bjt_loads <- sim.n_bjt_loads + 1;
        let vbe_new = vof x b -. vof x e in
        let vbc_new = vof x b -. vof x c in
        if
          bypass && bc.b_valid
          && bypass_close opts vbe_new bc.b_vbe
          && bypass_close opts vbc_new bc.b_vbc
        then begin
          sim.n_bjt_bypassed <- sim.n_bjt_bypassed + 1;
          stamp c b bc.g_cb;
          stamp c c bc.g_cc;
          stamp c e bc.g_ce;
          stamp b b bc.g_bb;
          stamp b c bc.g_bc;
          stamp b e bc.g_be;
          stamp e b bc.g_eb;
          stamp e c bc.g_ec;
          stamp e e bc.g_ee;
          inject rhs c bc.i_c;
          inject rhs b bc.i_b;
          inject rhs e bc.i_e
        end
        else begin
          sim.n_full_evals <- sim.n_full_evals + 1;
          let vcrit = Models.vcrit ~is:m.Models.q_is ~nvt in
          let vbe =
            let v = Models.pnjlim ~vnew:vbe_new ~vold:jbe.v_last ~nvt ~vcrit in
            jbe.v_last <- v;
            let err = Float.abs (vbe_new -. v) in
            if err > sim.junction_error then begin
              sim.junction_error <- err;
              sim.junction_worst <- di
            end;
            v
          in
          let vbc =
            let v = Models.pnjlim ~vnew:vbc_new ~vold:jbc.v_last ~nvt ~vcrit in
            jbc.v_last <- v;
            let err = Float.abs (vbc_new -. v) in
            if err > sim.junction_error then begin
              sim.junction_error <- err;
              sim.junction_worst <- di
            end;
            v
          in
          let ift, gif = Models.junction_current ~is:m.Models.q_is ~nvt vbe in
          let irt, gir = Models.junction_current ~is:m.Models.q_is ~nvt vbc in
          let icc = ift -. irt in
          let ibe = (ift /. m.Models.q_bf) +. (gmin *. vbe) in
          let gbe = (gif /. m.Models.q_bf) +. gmin in
          let ibc = (irt /. m.Models.q_br) +. (gmin *. vbc) in
          let gbc = (gir /. m.Models.q_br) +. gmin in
          let ic0 = icc -. ibc in
          let ib0 = ibe +. ibc in
          let ie0 = -.icc -. ibe in
          (* rows: partial derivatives wrt (Vb, Vc, Ve) *)
          let dic_dvb = gif -. gir -. gbc
          and dic_dvc = gir +. gbc
          and dic_dve = -.gif in
          let dib_dvb = gbe +. gbc and dib_dvc = -.gbc and dib_dve = -.gbe in
          let die_dvb = -.gif -. gbe +. gir and die_dvc = -.gir and die_dve = gif +. gbe in
          let ic_rhs = (gif *. vbe) +. (((-.gir) -. gbc) *. vbc) -. ic0 in
          let ib_rhs = (gbe *. vbe) +. (gbc *. vbc) -. ib0 in
          let ie_rhs = (((-.gif) -. gbe) *. vbe) +. (gir *. vbc) -. ie0 in
          stamp c b dic_dvb;
          stamp c c dic_dvc;
          stamp c e dic_dve;
          stamp b b dib_dvb;
          stamp b c dib_dvc;
          stamp b e dib_dve;
          stamp e b die_dvb;
          stamp e c die_dvc;
          stamp e e die_dve;
          inject rhs c ic_rhs;
          inject rhs b ib_rhs;
          inject rhs e ie_rhs;
          bc.b_valid <- true;
          bc.b_vbe <- vbe;
          bc.b_vbc <- vbc;
          bc.g_cb <- dic_dvb;
          bc.g_cc <- dic_dvc;
          bc.g_ce <- dic_dve;
          bc.g_bb <- dib_dvb;
          bc.g_bc <- dib_dvc;
          bc.g_be <- dib_dve;
          bc.g_eb <- die_dvb;
          bc.g_ec <- die_dvc;
          bc.g_ee <- die_dve;
          bc.i_c <- ic_rhs;
          bc.i_b <- ib_rhs;
          bc.i_e <- ie_rhs
        end
    | SVsrc { p; n; br; w } ->
        stamp br p 1.0;
        stamp br n (-1.0);
        stamp p br 1.0;
        stamp n br (-1.0);
        rhs.(br) <- rhs.(br) +. (srcscale *. Waveform.value w time)
    | SIsrc { p; n; w } ->
        let i = srcscale *. Waveform.value w time in
        inject rhs p (-.i);
        inject rhs n i
    | SVcvs { p; n; cp; cn; br; gain } ->
        stamp br p 1.0;
        stamp br n (-1.0);
        stamp br cp (-.gain);
        stamp br cn gain;
        stamp p br 1.0;
        stamp n br (-1.0)
    | SVccs { p; n; cp; cn; gm } ->
        stamp p cp gm;
        stamp p cn (-.gm);
        stamp n cp (-.gm);
        stamp n cn gm
  done

let load sim ~x ~time ~integ ~srcscale ~gshunt =
  let stamp =
    match sim.backend with
    | BDense { m; dstamp; _ } ->
        Cml_numerics.Dense.clear m;
        dstamp
    | BSparse sp ->
        sp.count <- 0;
        sp.sstamp
  in
  assemble sim ~x ~time ~integ ~srcscale ~gshunt ~bypass:sim.opts.bypass ~stamp;
  (match sim.backend with
  | BDense _ -> ()
  | BSparse sp -> begin
      match sp.pat with
      | None ->
          sp.pat <- Some (Cml_numerics.Sparse.compress sp.trip);
          (* from now on only values are refreshed, in entry order *)
          sp.sstamp <-
            (fun i j v ->
              if i >= 0 && j >= 0 then begin
                Cml_numerics.Sparse.set_values sp.trip sp.count v;
                sp.count <- sp.count + 1
              end)
      | Some pat -> Cml_numerics.Sparse.refill pat sp.trip
    end);
  (* Jacobian-reuse bookkeeping.  The matrix depends only on the fixed
     linear stamps, the integration coefficient (geq * C for caps; 0.0
     encodes DC and a transient geq is always positive), gshunt and
     the junction stamps — so when every junction device replayed its
     cache ([n_full_evals] = 0) and geq/gshunt match the previous
     load, the assembled matrix is bit-identical to the previous one.
     The RHS additionally depends on time, srcscale, trap and the
     capacitor companion states; the latter only change between Newton
     calls, which is why [newton] limits the solve-skip to consecutive
     iterations of one call. *)
  let geq, trap = match integ with Dcop -> (0.0, false) | Tran { geq; trap } -> (geq, trap) in
  let matrix_unchanged =
    sim.rt_loaded && sim.n_full_evals = 0 && geq = sim.rt_geq && gshunt = sim.rt_gshunt
  in
  sim.rt_matrix_unchanged <- matrix_unchanged;
  sim.rt_system_identical <-
    matrix_unchanged && time = sim.rt_time && srcscale = sim.rt_srcscale && trap = sim.rt_trap;
  sim.rt_loaded <- true;
  sim.rt_geq <- geq;
  sim.rt_gshunt <- gshunt;
  sim.rt_time <- time;
  sim.rt_srcscale <- srcscale;
  sim.rt_trap <- trap

let solve_linear_into sim out =
  let reuse = sim.rt_matrix_unchanged && sim.rt_have_factor in
  match sim.backend with
  | BDense { m; dws; _ } ->
      if reuse then begin
        sim.n_reused_factors <- sim.n_reused_factors + 1;
        Cml_numerics.Dense.resolve_ws dws sim.rhs out
      end
      else begin
        sim.rt_have_factor <- false;
        Cml_numerics.Dense.factor_ws m dws;
        sim.rt_have_factor <- true;
        Cml_numerics.Dense.resolve_ws dws sim.rhs out
      end
  | BSparse ({ pat = Some pat; _ } as sp) -> begin
      match sp.lu with
      | Some f when reuse ->
          sim.n_reused_factors <- sim.n_reused_factors + 1;
          Cml_numerics.Sparse_lu.solve_into f sim.rhs out
      | _ ->
          sim.rt_have_factor <- false;
          let a = Cml_numerics.Sparse.csc_of_pattern pat in
          (* the pattern of an MNA Jacobian is fixed across Newton
             iterations and timesteps, so the symbolic work (DFS reach,
             pivot order, fill pattern, buffer allocation) is done once
             and only the numeric elimination repeats; a degraded pivot
             falls back to a full factorization with a fresh pivot order *)
          let fresh_factorize () =
            let f = Cml_numerics.Sparse_lu.factorize a in
            sp.lu <- Some f;
            sp.symbolic <- sp.symbolic + 1;
            f
          in
          (* a refactorize that bailed forces a full factorization;
             attribute the fallback to its recorded reason *)
          let note_fallback f =
            let reason =
              match Cml_numerics.Sparse_lu.last_refactor_failure f with
              | Some (Cml_numerics.Sparse_lu.Small_pivot _) ->
                  sim.n_fb_small_pivot <- sim.n_fb_small_pivot + 1;
                  Introspect.lu_small_pivot
              | Some (Cml_numerics.Sparse_lu.Unstable_pivot _) ->
                  sim.n_fb_unstable_pivot <- sim.n_fb_unstable_pivot + 1;
                  Introspect.lu_unstable_pivot
              | Some Cml_numerics.Sparse_lu.Mismatched_pattern | None ->
                  sim.n_fb_pattern <- sim.n_fb_pattern + 1;
                  Introspect.lu_pattern
            in
            Introspect.note_lu_fallback sim.introspect ~reason
          in
          let f =
            match sp.lu with
            | Some f when Cml_numerics.Sparse_lu.refactorize f a ->
                sp.numeric <- sp.numeric + 1;
                f
            | Some f ->
                note_fallback f;
                fresh_factorize ()
            | None -> begin
                (* first factorization: a donor sim of the same design
                   may have offered its symbolic analysis — adopt it
                   (ordering, patterns, pivot order) and only run the
                   numeric elimination, unless its pivot order is
                   unstable for this sim's values *)
                match sp.donor with
                | None -> fresh_factorize ()
                | Some d -> begin
                    sp.donor <- None;
                    match Cml_numerics.Sparse_lu.adopt_symbolic d a with
                    | Some f when Cml_numerics.Sparse_lu.refactorize f a ->
                        sp.lu <- Some f;
                        sp.shared <- sp.shared + 1;
                        f
                    | Some f ->
                        (* the donor's pivot order is unstable for
                           this sim's values *)
                        note_fallback f;
                        fresh_factorize ()
                    | None -> fresh_factorize ()
                  end
              end
          in
          sim.rt_have_factor <- true;
          Cml_numerics.Sparse_lu.solve_into f sim.rhs out
    end
  | BSparse { pat = None; _ } -> assert false

type solver_stats = {
  symbolic_factorizations : int;
  numeric_refactorizations : int;
  shared_symbolic : int;
  newton_iters : int;
  device_loads : int;
  bypassed_loads : int;
  diode_loads : int;
  diode_bypassed : int;
  bjt_loads : int;
  bjt_bypassed : int;
  reused_factorizations : int;
  skipped_solves : int;
  fallback_small_pivot : int;
  fallback_unstable_pivot : int;
  fallback_pattern : int;
  lu_nnz_factors : int;
  lu_fill_ratio : float;
  lu_ordering : string;
  lu_pivot_growth : float;
  lu_condition : float;
}

let solver_stats sim =
  let symbolic, numeric, shared, lu, health =
    match sim.backend with
    | BDense _ -> (0, 0, 0, None, None)
    | BSparse { symbolic; numeric; shared; lu; pat; _ } ->
        (* run-boundary call: the O(nnz) health scan is off the solve
           path by construction *)
        let health =
          match (lu, pat) with
          | Some f, Some p ->
              Some (Cml_numerics.Sparse_lu.health f (Cml_numerics.Sparse.csc_of_pattern p))
          | (Some _ | None), _ -> None
        in
        (symbolic, numeric, shared, lu, health)
  in
  {
    symbolic_factorizations = symbolic;
    numeric_refactorizations = numeric;
    shared_symbolic = shared;
    newton_iters = sim.n_newton_iters;
    device_loads = sim.n_diode_loads + sim.n_bjt_loads;
    bypassed_loads = sim.n_diode_bypassed + sim.n_bjt_bypassed;
    diode_loads = sim.n_diode_loads;
    diode_bypassed = sim.n_diode_bypassed;
    bjt_loads = sim.n_bjt_loads;
    bjt_bypassed = sim.n_bjt_bypassed;
    reused_factorizations = sim.n_reused_factors;
    skipped_solves = sim.n_skipped_solves;
    fallback_small_pivot = sim.n_fb_small_pivot;
    fallback_unstable_pivot = sim.n_fb_unstable_pivot;
    fallback_pattern = sim.n_fb_pattern;
    lu_nnz_factors =
      (match lu with
      | Some f ->
          let nl, nu = Cml_numerics.Sparse_lu.lu_nnz f in
          nl + nu
      | None -> 0);
    lu_fill_ratio = (match lu with Some f -> Cml_numerics.Sparse_lu.fill_ratio f | None -> 0.0);
    lu_ordering = (match lu with Some f -> Cml_numerics.Sparse_lu.ordering_name f | None -> "");
    lu_pivot_growth =
      (match health with Some h -> h.Cml_numerics.Sparse_lu.pivot_growth | None -> 0.0);
    lu_condition =
      (match health with Some h -> h.Cml_numerics.Sparse_lu.condition_estimate | None -> 0.0);
  }

let zero_stats =
  {
    symbolic_factorizations = 0;
    numeric_refactorizations = 0;
    shared_symbolic = 0;
    newton_iters = 0;
    device_loads = 0;
    bypassed_loads = 0;
    diode_loads = 0;
    diode_bypassed = 0;
    bjt_loads = 0;
    bjt_bypassed = 0;
    reused_factorizations = 0;
    skipped_solves = 0;
    fallback_small_pivot = 0;
    fallback_unstable_pivot = 0;
    fallback_pattern = 0;
    lu_nnz_factors = 0;
    lu_fill_ratio = 0.0;
    lu_ordering = "";
    lu_pivot_growth = 0.0;
    lu_condition = 0.0;
  }

let set_introspect sim r = sim.introspect <- r

let introspect sim = sim.introspect

(* Attribution label for a device index reported by the recorder
   (worst-junction blame): BJTs carry their netlist name, diodes are
   identified by their terminals. *)
let device_label sim di =
  if di < 0 || di >= Array.length sim.sdevs then Printf.sprintf "device[%d]" di
  else
    match sim.sdevs.(di) with
    | SBjt { name; _ } -> name
    | SDiode { a; k; _ } -> Printf.sprintf "diode[%d-%d]" (a + 1) (k + 1)
    | SRes _ | SCap _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ ->
        Printf.sprintf "device[%d]" di

let share_symbolic ~donor sim =
  match (donor.backend, sim.backend) with
  | BSparse d, BSparse s -> ( match d.lu with Some f -> s.donor <- Some f | None -> ())
  | (BDense _ | BSparse _), (BDense _ | BSparse _) -> ()

let lu_fill sim =
  match sim.backend with
  | BDense _ | BSparse { lu = None; _ } -> None
  | BSparse { lu = Some f; _ } -> Some (Cml_numerics.Sparse_lu.lu_nnz f)

(* Global metrics-registry handles.  Per-iteration counting stays in
   the plain mutable [sim] fields above (no atomics on the Newton
   loop); [publish_metrics] folds a sim's counter deltas into the
   registry at run boundaries — end of a transient, a sweep, a
   Monte-Carlo sample. *)
module M = Cml_telemetry.Metrics

let m_newton_iters = M.counter "solver.newton_iters"
let m_symbolic = M.counter "solver.symbolic_factorizations"
let m_numeric = M.counter "solver.numeric_refactorizations"
let m_device_loads = M.counter "engine.device_loads"
let m_bypassed = M.counter "engine.bypassed_loads"
let m_reused = M.counter "solver.reused_factorizations"
let m_skipped = M.counter "solver.skipped_solves"
let m_shared = M.counter "solver.shared_symbolic"
let m_lu_fill = M.gauge "solver.lu_fill_nnz"
let m_lu_fill_ratio = M.gauge "solver.lu_fill_ratio"
let m_ordering_amd = M.counter "solver.ordering.amd"
let m_ordering_natural = M.counter "solver.ordering.natural"
let m_fb_small = M.counter "solver.fallback.small_pivot"
let m_fb_unstable = M.counter "solver.fallback.unstable_pivot"
let m_fb_pattern = M.counter "solver.fallback.pattern"
let m_pivot_growth = M.gauge "solver.lu_pivot_growth"
let m_condition = M.gauge "solver.lu_condition"
let m_diode_loads = M.counter "engine.diode_loads"
let m_diode_bypassed = M.counter "engine.diode_bypassed"
let m_bjt_loads = M.counter "engine.bjt_loads"
let m_bjt_bypassed = M.counter "engine.bjt_bypassed"

let publish_metrics ?(since = zero_stats) sim =
  let now = solver_stats sim in
  M.add m_newton_iters (now.newton_iters - since.newton_iters);
  M.add m_symbolic (now.symbolic_factorizations - since.symbolic_factorizations);
  M.add m_numeric (now.numeric_refactorizations - since.numeric_refactorizations);
  M.add m_device_loads (now.device_loads - since.device_loads);
  M.add m_bypassed (now.bypassed_loads - since.bypassed_loads);
  M.add m_reused (now.reused_factorizations - since.reused_factorizations);
  M.add m_skipped (now.skipped_solves - since.skipped_solves);
  M.add m_shared (now.shared_symbolic - since.shared_symbolic);
  M.add m_diode_loads (now.diode_loads - since.diode_loads);
  M.add m_diode_bypassed (now.diode_bypassed - since.diode_bypassed);
  M.add m_bjt_loads (now.bjt_loads - since.bjt_loads);
  M.add m_bjt_bypassed (now.bjt_bypassed - since.bjt_bypassed);
  M.add m_fb_small (now.fallback_small_pivot - since.fallback_small_pivot);
  M.add m_fb_unstable (now.fallback_unstable_pivot - since.fallback_unstable_pivot);
  M.add m_fb_pattern (now.fallback_pattern - since.fallback_pattern);
  if now.lu_nnz_factors > 0 then begin
    M.set m_lu_fill (float_of_int now.lu_nnz_factors);
    M.set m_lu_fill_ratio now.lu_fill_ratio;
    M.set m_pivot_growth now.lu_pivot_growth;
    M.set m_condition now.lu_condition;
    (* count factorizations by the ordering they ended up with, so a
       metrics snapshot shows which path large designs actually take *)
    let fresh = now.symbolic_factorizations - since.symbolic_factorizations in
    if fresh > 0 then
      M.add (if now.lu_ordering = "amd" then m_ordering_amd else m_ordering_natural) fresh
  end

let converged sim x x' =
  let ok = ref true in
  for i = 0 to sim.nunk - 1 do
    let tol =
      if i < sim.nv then sim.opts.vntol +. (sim.opts.reltol *. Float.max (Float.abs x.(i)) (Float.abs x'.(i)))
      else sim.opts.abstol +. (sim.opts.reltol *. Float.max (Float.abs x.(i)) (Float.abs x'.(i)))
    in
    if Float.abs (x'.(i) -. x.(i)) > tol then ok := false
  done;
  !ok

let set_junction_states sim x =
  Array.iter
    (function
      | SDiode { a; k; js; _ } -> js.v_last <- vof x a -. vof x k
      | SBjt { c; b; e; jbe; jbc; _ } ->
          jbe.v_last <- vof x b -. vof x e;
          jbc.v_last <- vof x b -. vof x c
      | SRes _ | SCap _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> ())
    sim.sdevs

(* The iterate loop works entirely in the per-sim workspace ([ws_x],
   [ws_xnew], the backend matrix/factor scratch): no vector or matrix
   is allocated per iteration, only the converged solution is copied
   out once on success. *)
let newton sim ~time ~integ ?(srcscale = 1.0) ?(gshunt = 0.0) x0 =
  (* token span, not [with_span]: this is the inner hot path, and the
     token API keeps the disabled cost to one atomic load + branch
     with no closure or argument allocation *)
  let tok = Cml_telemetry.Trace.start () in
  set_junction_states sim x0;
  let x = sim.ws_x and xn = sim.ws_xnew in
  Array.blit x0 0 x 0 sim.nunk;
  let rec iterate iter =
    if iter > sim.opts.max_iter then None
    else begin
      load sim ~x ~time ~integ ~srcscale ~gshunt;
      sim.n_newton_iters <- sim.n_newton_iters + 1;
      (* Identical-system acceptance: for [iter > 0] the previous
         iteration solved the system the previous load assembled, and
         its solution is the current iterate [x].  When this load
         produced a bit-identical system (every junction bypassed,
         same geq/gshunt/time/srcscale/trap; capacitor states cannot
         move inside one Newton call), solving again would return [x]
         exactly — a zero-delta, junction-settled, converged accept.
         Skip the solve and accept [x] directly; this is bit-exact
         with the unskipped path. *)
      if iter > 0 && sim.rt_system_identical then begin
        sim.n_skipped_solves <- sim.n_skipped_solves + 1;
        Some (Cml_numerics.Vec.copy x, iter)
      end
      else
        match solve_linear_into sim xn with
        | exception (Cml_numerics.Dense.Singular _ | Cml_numerics.Sparse_lu.Singular _) -> None
        | () ->
            Introspect.note_newton sim.introspect ~time ~iter ~x ~xn
              ~junction_error:sim.junction_error ~junction_worst:sim.junction_worst;
            let junctions_settled = sim.junction_error <= sim.opts.vntol +. (sim.opts.reltol *. 1.0) in
            if iter > 0 && junctions_settled && converged sim x xn then
              Some (Cml_numerics.Vec.copy xn, iter)
            else begin
              Array.blit xn 0 x 0 sim.nunk;
              iterate (iter + 1)
            end
    end
  in
  let result = iterate 0 in
  (match result with
  | None -> Introspect.note_newton_fail sim.introspect ~time
  | Some _ -> ());
  Cml_telemetry.Trace.finish ~cat:"solver" "newton_solve" tok;
  result

let zeros sim = Array.make sim.nunk 0.0

let gmin_levels =
  [
    1e-2; 3e-3; 1e-3; 3e-4; 1e-4; 3e-5; 1e-5; 3e-6; 1e-6; 1e-7; 1e-8; 1e-9; 1e-10; 1e-11;
    1e-12; 0.0;
  ]


let dc_homotopy sim ~time x0 =
  (* plain Newton first *)
  match newton sim ~time ~integ:Dcop x0 with
  | Some (x, _) -> Some x
  | None ->
      (* gmin stepping; a level that fails is skipped (the next,
         gentler level often converges from the same start), but the
         final gshunt = 0 solve must succeed *)
      let rec gmin_walk x = function
        | [] -> Some x
        | g :: rest -> begin
            match newton sim ~time ~integ:Dcop ~gshunt:g x with
            | Some (x', _) -> gmin_walk x' rest
            | None -> if rest = [] then None else gmin_walk x rest
          end
      in
      let gmin_result = gmin_walk (zeros sim) gmin_levels in
      (match gmin_result with
      | Some x -> Some x
      | None ->
          (* adaptive source stepping: on failure, bisect toward the
             last converged scale; on success, grow the step *)
          let rec src_walk x s_done step budget =
            if s_done >= 1.0 then Some x
            else if budget = 0 || step < 1e-4 then None
            else begin
              let target = Float.min 1.0 (s_done +. step) in
              match newton sim ~time ~integ:Dcop ~srcscale:target x with
              | Some (x', _) -> src_walk x' target (step *. 2.0) (budget - 1)
              | None -> src_walk x s_done (step /. 2.0) (budget - 1)
            end
          in
          src_walk (zeros sim) 0.0 0.1 60)

let dc_operating_point ?(time = 0.0) sim =
  Cml_telemetry.Trace.with_span ~cat:"sim" "dc" (fun () ->
      match dc_homotopy sim ~time (zeros sim) with
      | Some x -> x
      | None -> raise (No_convergence "dc operating point"))

let dc_from ?(time = 0.0) sim x0 =
  Cml_telemetry.Trace.with_span ~cat:"sim" "dc" (fun () ->
      match newton sim ~time ~integ:Dcop x0 with
      | Some (x, _) -> x
      | None -> (
          match dc_homotopy sim ~time (zeros sim) with
          | Some x -> x
          | None -> raise (No_convergence "dc continuation")))

let init_capacitor_states sim x =
  Array.iter
    (function
      | SCap c ->
          c.vprev <- vof x c.i -. vof x c.j;
          c.iprev <- 0.0
      | SRes _ | SDiode _ | SBjt _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> ())
    sim.sdevs

let update_capacitor_states sim x ~h ~trap =
  Array.iter
    (function
      | SCap c ->
          let v = vof x c.i -. vof x c.j in
          let i_new =
            if trap then (2.0 *. c.c /. h *. (v -. c.vprev)) -. c.iprev
            else c.c /. h *. (v -. c.vprev)
          in
          c.vprev <- v;
          c.iprev <- i_new
      | SRes _ | SDiode _ | SBjt _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> ())
    sim.sdevs

let ac_system sim x =
  set_junction_states sim x;
  (* this assembly full-evaluates every junction into a side triplet,
     refreshing the bypass caches without touching the backend matrix:
     the factor and the previous-load fingerprint are both stale now *)
  sim.rt_loaded <- false;
  sim.rt_have_factor <- false;
  (* collect the conductance stamps straight off the device sweep
     into a triplet (compression sums duplicates), instead of probing
     every cell of the assembled backend matrix — the dense backend
     made that an O(n^2) scan with a cons per probe.  Bypass is off:
     the small-signal G must be the exact linearisation at [x], not a
     cached one. *)
  let trip = Cml_numerics.Sparse.triplet_create sim.nunk in
  let stamp i j v = if i >= 0 && j >= 0 then Cml_numerics.Sparse.add trip i j v in
  assemble sim ~x ~time:0.0 ~integ:Dcop ~srcscale:1.0 ~gshunt:0.0 ~bypass:false ~stamp;
  let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress trip) in
  let g_entries =
    let acc = ref [] in
    for j = 0 to a.Cml_numerics.Sparse.n - 1 do
      for p = a.Cml_numerics.Sparse.colptr.(j) to a.Cml_numerics.Sparse.colptr.(j + 1) - 1 do
        let v = a.Cml_numerics.Sparse.values.(p) in
        if v <> 0.0 then acc := (a.Cml_numerics.Sparse.rowind.(p), j, v) :: !acc
      done
    done;
    !acc
  in
  let c_entries =
    Array.fold_left
      (fun acc d ->
        match d with
        | SCap { i; j; c; _ } ->
            let add acc a bt v = if a >= 0 && bt >= 0 then (a, bt, v) :: acc else acc in
            add (add (add (add acc i i c) j j c) i j (-.c)) j i (-.c)
        | SRes _ | SDiode _ | SBjt _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> acc)
      [] sim.sdevs
  in
  (g_entries, c_entries)


type bjt_op = { q_name : string; vbe : float; vce : float; ic : float; ib : float }

let bjt_report sim x =
  let nvt = Models.boltzmann_vt in
  let rev =
    Array.fold_left
      (fun acc d ->
        match d with
        | SBjt { name; c; b; e; m; _ } ->
            let vbe = vof x b -. vof x e and vbc = vof x b -. vof x c in
            let ift, _ = Models.junction_current ~is:m.Models.q_is ~nvt vbe in
            let irt, _ = Models.junction_current ~is:m.Models.q_is ~nvt vbc in
            let ic = ift -. irt -. (irt /. m.Models.q_br) in
            let ib = (ift /. m.Models.q_bf) +. (irt /. m.Models.q_br) in
            { q_name = name; vbe; vce = vof x c -. vof x e; ic; ib } :: acc
        | SRes _ | SCap _ | SDiode _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> acc)
      [] sim.sdevs
  in
  List.rev rev
