type solver_kind = Dense_solver | Sparse_solver | Auto

type options = {
  reltol : float;
  vntol : float;
  abstol : float;
  gmin : float;
  max_iter : int;
  solver : solver_kind;
}

let default_options =
  {
    reltol = 1e-4;
    vntol = 1e-6;
    abstol = 1e-12;
    gmin = 1e-12;
    max_iter = 100;
    solver = Auto;
  }

exception No_convergence of string

type junction = { mutable v_last : float }

type sdev =
  | SRes of { i : int; j : int; g : float }
  | SCap of { i : int; j : int; c : float; mutable vprev : float; mutable iprev : float }
  | SDiode of { a : int; k : int; m : Models.diode; js : junction }
  | SBjt of {
      name : string;
      c : int;
      b : int;
      e : int;
      m : Models.bjt;
      jbe : junction;
      jbc : junction;
    }
  | SVsrc of { p : int; n : int; br : int; w : Waveform.t }
  | SIsrc of { p : int; n : int; w : Waveform.t }
  | SVcvs of { p : int; n : int; cp : int; cn : int; br : int; gain : float }
  | SVccs of { p : int; n : int; cp : int; cn : int; gm : float }

type backend =
  | BDense of Cml_numerics.Dense.t
  | BSparse of {
      trip : Cml_numerics.Sparse.triplet;
      mutable pat : Cml_numerics.Sparse.pattern option;
      mutable count : int;
      mutable lu : Cml_numerics.Sparse_lu.factor option;
          (** factor of the previous solve, kept for numeric-only
              refactorization while the Jacobian pattern and pivot
              stability allow it *)
      mutable symbolic : int;  (** full factorizations performed *)
      mutable numeric : int;  (** numeric-only refactorizations *)
    }

type sim = {
  opts : options;
  nv : int;  (** node-voltage unknowns *)
  nunk : int;
  sdevs : sdev array;
  branches : (string, int) Hashtbl.t;
  backend : backend;
  rhs : float array;
  mutable junction_error : float;
      (** largest |v_solution - v_limited| over all junctions during
          the last load; convergence requires this to vanish, or the
          slow creep of [pnjlim] could be mistaken for a fixed point *)
}

type integ = Dcop | Tran of { geq : float; trap : bool }

let node_unknown nd = nd - 1

let voltage x nd = if nd = 0 then 0.0 else x.(nd - 1)

let unknown_count sim = sim.nunk

let options sim = sim.opts

let branch_unknown sim name =
  match Hashtbl.find_opt sim.branches name with Some i -> i | None -> raise Not_found

let compile ?(options = default_options) net =
  let nv = Netlist.node_count net - 1 in
  let sdevs = ref [] in
  let branches = Hashtbl.create 8 in
  let nbranch = ref 0 in
  let u = node_unknown in
  let emit d = sdevs := d :: !sdevs in
  let emit_cap i j c = if c > 0.0 then emit (SCap { i; j; c; vprev = 0.0; iprev = 0.0 }) in
  let compile_device = function
    | Netlist.Resistor { n1; n2; r; _ } ->
        if r <= 0.0 then invalid_arg "non-positive resistance";
        emit (SRes { i = u n1; j = u n2; g = 1.0 /. r })
    | Netlist.Capacitor { n1; n2; c; _ } -> emit_cap (u n1) (u n2) c
    | Netlist.Diode { anode; cathode; model; _ } ->
        emit (SDiode { a = u anode; k = u cathode; m = model; js = { v_last = 0.0 } });
        emit_cap (u anode) (u cathode) model.Models.d_cj
    | Netlist.Bjt { name; collector; base; emitters; model } ->
        Array.iteri
          (fun k e ->
            let name = if Array.length emitters = 1 then name else Printf.sprintf "%s#e%d" name k in
            emit
              (SBjt
                 {
                   name;
                   c = u collector;
                   b = u base;
                   e = u e;
                   m = model;
                   jbe = { v_last = 0.0 };
                   jbc = { v_last = 0.0 };
                 });
            emit_cap (u base) (u e) model.Models.q_cje;
            emit_cap (u base) (u collector) model.Models.q_cjc)
          emitters
    | Netlist.Vsource { name; npos; nneg; wave } ->
        let br = nv + !nbranch in
        incr nbranch;
        Hashtbl.replace branches name br;
        emit (SVsrc { p = u npos; n = u nneg; br; w = wave })
    | Netlist.Isource { npos; nneg; wave; _ } ->
        emit (SIsrc { p = u npos; n = u nneg; w = wave })
    | Netlist.Vcvs { name; npos; nneg; cpos; cneg; gain } ->
        let br = nv + !nbranch in
        incr nbranch;
        Hashtbl.replace branches name br;
        emit (SVcvs { p = u npos; n = u nneg; cp = u cpos; cn = u cneg; br; gain })
    | Netlist.Vccs { npos; nneg; cpos; cneg; gm; _ } ->
        emit (SVccs { p = u npos; n = u nneg; cp = u cpos; cn = u cneg; gm })
  in
  Netlist.iter_devices net compile_device;
  let nunk = nv + !nbranch in
  let use_sparse =
    match options.solver with
    | Dense_solver -> false
    | Sparse_solver -> true
    | Auto -> nunk > 60
  in
  let backend =
    if use_sparse then
      BSparse
        {
          trip = Cml_numerics.Sparse.triplet_create nunk;
          pat = None;
          count = 0;
          lu = None;
          symbolic = 0;
          numeric = 0;
        }
    else BDense (Cml_numerics.Dense.create nunk)
  in
  {
    opts = options;
    nv;
    nunk;
    sdevs = Array.of_list (List.rev !sdevs);
    branches;
    backend;
    rhs = Array.make nunk 0.0;
    junction_error = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Assembly.

   The entry *sequence* produced by [load] is identical on every call
   (same devices, same order, zero-valued entries included), which is
   what lets the sparse backend compress the pattern once and then
   only refresh numeric values. *)

(* Assembly core, parameterised on the matrix stamp: [load] targets
   the compiled backend, [ac_system] a triplet collector.  [stamp]
   receives raw unknown indices and must ignore negative (ground)
   ones itself. *)
let assemble sim ~x ~time ~integ ~srcscale ~gshunt ~stamp =
  let rhs = sim.rhs in
  Array.fill rhs 0 sim.nunk 0.0;
  let inject i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v in
  let vof i = if i < 0 then 0.0 else x.(i) in
  let stamp_conductance i j g =
    stamp i i g;
    stamp j j g;
    stamp i j (-.g);
    stamp j i (-.g)
  in
  let gmin = sim.opts.gmin in
  let nvt = Models.boltzmann_vt in
  sim.junction_error <- 0.0;
  let note_junction vnew vlim =
    let err = Float.abs (vnew -. vlim) in
    if err > sim.junction_error then sim.junction_error <- err
  in
  (* gshunt diagonal for every node unknown: also guarantees a
     structurally non-empty diagonal for the sparse pattern *)
  for i = 0 to sim.nv - 1 do
    stamp i i gshunt
  done;
  let do_device = function
    | SRes { i; j; g } -> stamp_conductance i j g
    | SCap { i; j; c; vprev; iprev } ->
        let g, irhs =
          match integ with
          | Dcop -> (0.0, 0.0)
          | Tran { geq; trap } ->
              let g = geq *. c in
              (g, (g *. vprev) +. if trap then iprev else 0.0)
        in
        stamp_conductance i j g;
        inject i irhs;
        inject j (-.irhs)
    | SDiode { a; k; m; js } ->
        let n_nvt = m.Models.d_n *. nvt in
        let vnew = vof a -. vof k in
        let vlim =
          Models.pnjlim ~vnew ~vold:js.v_last ~nvt:n_nvt
            ~vcrit:(Models.vcrit ~is:m.Models.d_is ~nvt:n_nvt)
        in
        js.v_last <- vlim;
        note_junction vnew vlim;
        let id, gd = Models.junction_current ~is:m.Models.d_is ~nvt:n_nvt vlim in
        let g = gd +. gmin and i0 = id +. (gmin *. vlim) in
        stamp_conductance a k g;
        let ieq = (g *. vlim) -. i0 in
        inject a ieq;
        inject k (-.ieq)
    | SBjt { c; b; e; m; jbe; jbc; name = _ } ->
        let vcrit = Models.vcrit ~is:m.Models.q_is ~nvt in
        let lim vnew j =
          let v = Models.pnjlim ~vnew ~vold:j.v_last ~nvt ~vcrit in
          j.v_last <- v;
          note_junction vnew v;
          v
        in
        let vbe = lim (vof b -. vof e) jbe in
        let vbc = lim (vof b -. vof c) jbc in
        let ift, gif = Models.junction_current ~is:m.Models.q_is ~nvt vbe in
        let irt, gir = Models.junction_current ~is:m.Models.q_is ~nvt vbc in
        let icc = ift -. irt in
        let ibe = (ift /. m.Models.q_bf) +. (gmin *. vbe) in
        let gbe = (gif /. m.Models.q_bf) +. gmin in
        let ibc = (irt /. m.Models.q_br) +. (gmin *. vbc) in
        let gbc = (gir /. m.Models.q_br) +. gmin in
        let ic0 = icc -. ibc in
        let ib0 = ibe +. ibc in
        let ie0 = -.icc -. ibe in
        (* rows: partial derivatives wrt (Vb, Vc, Ve) *)
        let dic_dvb = gif -. gir -. gbc
        and dic_dvc = gir +. gbc
        and dic_dve = -.gif in
        let dib_dvb = gbe +. gbc and dib_dvc = -.gbc and dib_dve = -.gbe in
        let die_dvb = -.gif -. gbe +. gir and die_dvc = -.gir and die_dve = gif +. gbe in
        stamp c b dic_dvb;
        stamp c c dic_dvc;
        stamp c e dic_dve;
        stamp b b dib_dvb;
        stamp b c dib_dvc;
        stamp b e dib_dve;
        stamp e b die_dvb;
        stamp e c die_dvc;
        stamp e e die_dve;
        inject c ((gif *. vbe) +. (((-.gir) -. gbc) *. vbc) -. ic0);
        inject b ((gbe *. vbe) +. (gbc *. vbc) -. ib0);
        inject e ((((-.gif) -. gbe) *. vbe) +. (gir *. vbc) -. ie0)
    | SVsrc { p; n; br; w } ->
        stamp br p 1.0;
        stamp br n (-1.0);
        stamp p br 1.0;
        stamp n br (-1.0);
        rhs.(br) <- rhs.(br) +. (srcscale *. Waveform.value w time)
    | SIsrc { p; n; w } ->
        let i = srcscale *. Waveform.value w time in
        inject p (-.i);
        inject n i
    | SVcvs { p; n; cp; cn; br; gain } ->
        stamp br p 1.0;
        stamp br n (-1.0);
        stamp br cp (-.gain);
        stamp br cn gain;
        stamp p br 1.0;
        stamp n br (-1.0)
    | SVccs { p; n; cp; cn; gm } ->
        stamp p cp gm;
        stamp p cn (-.gm);
        stamp n cp (-.gm);
        stamp n cn gm
  in
  Array.iter do_device sim.sdevs

let load sim ~x ~time ~integ ~srcscale ~gshunt =
  let stamp =
    match sim.backend with
    | BDense d ->
        Cml_numerics.Dense.clear d;
        fun i j v -> if i >= 0 && j >= 0 then Cml_numerics.Dense.add_entry d i j v
    | BSparse sp ->
        sp.count <- 0;
        if sp.pat = None then
          (fun i j v -> if i >= 0 && j >= 0 then Cml_numerics.Sparse.add sp.trip i j v)
        else
          fun i j v ->
            if i >= 0 && j >= 0 then begin
              Cml_numerics.Sparse.set_values sp.trip sp.count v;
              sp.count <- sp.count + 1
            end
  in
  assemble sim ~x ~time ~integ ~srcscale ~gshunt ~stamp;
  match sim.backend with
  | BDense _ -> ()
  | BSparse sp -> begin
      match sp.pat with
      | None -> sp.pat <- Some (Cml_numerics.Sparse.compress sp.trip)
      | Some pat -> Cml_numerics.Sparse.refill pat sp.trip
    end

let solve_linear sim =
  match sim.backend with
  | BDense d -> Cml_numerics.Dense.solve d sim.rhs
  | BSparse ({ pat = Some pat; _ } as sp) ->
      let a = Cml_numerics.Sparse.csc_of_pattern pat in
      (* the pattern of an MNA Jacobian is fixed across Newton
         iterations and timesteps, so the symbolic work (DFS reach,
         pivot order, fill pattern, buffer allocation) is done once
         and only the numeric elimination repeats; a degraded pivot
         falls back to a full factorization with a fresh pivot order *)
      let f =
        match sp.lu with
        | Some f when Cml_numerics.Sparse_lu.refactorize f a ->
            sp.numeric <- sp.numeric + 1;
            f
        | Some _ | None ->
            let f = Cml_numerics.Sparse_lu.factorize a in
            sp.lu <- Some f;
            sp.symbolic <- sp.symbolic + 1;
            f
      in
      Cml_numerics.Sparse_lu.solve f sim.rhs
  | BSparse { pat = None; _ } -> assert false

type solver_stats = { symbolic_factorizations : int; numeric_refactorizations : int }

let solver_stats sim =
  match sim.backend with
  | BDense _ -> { symbolic_factorizations = 0; numeric_refactorizations = 0 }
  | BSparse { symbolic; numeric; _ } ->
      { symbolic_factorizations = symbolic; numeric_refactorizations = numeric }

let converged sim x x' =
  let ok = ref true in
  for i = 0 to sim.nunk - 1 do
    let tol =
      if i < sim.nv then sim.opts.vntol +. (sim.opts.reltol *. Float.max (Float.abs x.(i)) (Float.abs x'.(i)))
      else sim.opts.abstol +. (sim.opts.reltol *. Float.max (Float.abs x.(i)) (Float.abs x'.(i)))
    in
    if Float.abs (x'.(i) -. x.(i)) > tol then ok := false
  done;
  !ok

let set_junction_states sim x =
  let vof i = if i < 0 then 0.0 else x.(i) in
  Array.iter
    (function
      | SDiode { a; k; js; _ } -> js.v_last <- vof a -. vof k
      | SBjt { c; b; e; jbe; jbc; _ } ->
          jbe.v_last <- vof b -. vof e;
          jbc.v_last <- vof b -. vof c
      | SRes _ | SCap _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> ())
    sim.sdevs

let newton sim ~time ~integ ?(srcscale = 1.0) ?(gshunt = 0.0) x0 =
  set_junction_states sim x0;
  let rec iterate x iter =
    if iter > sim.opts.max_iter then None
    else begin
      load sim ~x ~time ~integ ~srcscale ~gshunt;
      match solve_linear sim with
      | exception (Cml_numerics.Dense.Singular _ | Cml_numerics.Sparse_lu.Singular _) -> None
      | x' ->
          let junctions_settled = sim.junction_error <= sim.opts.vntol +. (sim.opts.reltol *. 1.0) in
          if iter > 0 && junctions_settled && converged sim x x' then Some (x', iter)
          else iterate x' (iter + 1)
    end
  in
  iterate (Cml_numerics.Vec.copy x0) 0

let zeros sim = Array.make sim.nunk 0.0

let gmin_levels =
  [
    1e-2; 3e-3; 1e-3; 3e-4; 1e-4; 3e-5; 1e-5; 3e-6; 1e-6; 1e-7; 1e-8; 1e-9; 1e-10; 1e-11;
    1e-12; 0.0;
  ]


let dc_homotopy sim ~time x0 =
  (* plain Newton first *)
  match newton sim ~time ~integ:Dcop x0 with
  | Some (x, _) -> Some x
  | None ->
      (* gmin stepping; a level that fails is skipped (the next,
         gentler level often converges from the same start), but the
         final gshunt = 0 solve must succeed *)
      let rec gmin_walk x = function
        | [] -> Some x
        | g :: rest -> begin
            match newton sim ~time ~integ:Dcop ~gshunt:g x with
            | Some (x', _) -> gmin_walk x' rest
            | None -> if rest = [] then None else gmin_walk x rest
          end
      in
      let gmin_result = gmin_walk (zeros sim) gmin_levels in
      (match gmin_result with
      | Some x -> Some x
      | None ->
          (* adaptive source stepping: on failure, bisect toward the
             last converged scale; on success, grow the step *)
          let rec src_walk x s_done step budget =
            if s_done >= 1.0 then Some x
            else if budget = 0 || step < 1e-4 then None
            else begin
              let target = Float.min 1.0 (s_done +. step) in
              match newton sim ~time ~integ:Dcop ~srcscale:target x with
              | Some (x', _) -> src_walk x' target (step *. 2.0) (budget - 1)
              | None -> src_walk x s_done (step /. 2.0) (budget - 1)
            end
          in
          src_walk (zeros sim) 0.0 0.1 60)

let dc_operating_point ?(time = 0.0) sim =
  match dc_homotopy sim ~time (zeros sim) with
  | Some x -> x
  | None -> raise (No_convergence "dc operating point")

let dc_from ?(time = 0.0) sim x0 =
  match newton sim ~time ~integ:Dcop x0 with
  | Some (x, _) -> x
  | None -> (
      match dc_homotopy sim ~time (zeros sim) with
      | Some x -> x
      | None -> raise (No_convergence "dc continuation"))

let init_capacitor_states sim x =
  let vof i = if i < 0 then 0.0 else x.(i) in
  Array.iter
    (function
      | SCap c ->
          c.vprev <- vof c.i -. vof c.j;
          c.iprev <- 0.0
      | SRes _ | SDiode _ | SBjt _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> ())
    sim.sdevs

let update_capacitor_states sim x ~h ~trap =
  let vof i = if i < 0 then 0.0 else x.(i) in
  Array.iter
    (function
      | SCap c ->
          let v = vof c.i -. vof c.j in
          let i_new =
            if trap then (2.0 *. c.c /. h *. (v -. c.vprev)) -. c.iprev
            else c.c /. h *. (v -. c.vprev)
          in
          c.vprev <- v;
          c.iprev <- i_new
      | SRes _ | SDiode _ | SBjt _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> ())
    sim.sdevs

let ac_system sim x =
  set_junction_states sim x;
  (* collect the conductance stamps straight off the device sweep
     into a triplet (compression sums duplicates), instead of probing
     every cell of the assembled backend matrix — the dense backend
     made that an O(n^2) scan with a cons per probe *)
  let trip = Cml_numerics.Sparse.triplet_create sim.nunk in
  let stamp i j v = if i >= 0 && j >= 0 then Cml_numerics.Sparse.add trip i j v in
  assemble sim ~x ~time:0.0 ~integ:Dcop ~srcscale:1.0 ~gshunt:0.0 ~stamp;
  let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress trip) in
  let g_entries =
    let acc = ref [] in
    for j = 0 to a.Cml_numerics.Sparse.n - 1 do
      for p = a.Cml_numerics.Sparse.colptr.(j) to a.Cml_numerics.Sparse.colptr.(j + 1) - 1 do
        let v = a.Cml_numerics.Sparse.values.(p) in
        if v <> 0.0 then acc := (a.Cml_numerics.Sparse.rowind.(p), j, v) :: !acc
      done
    done;
    !acc
  in
  let c_entries =
    Array.fold_left
      (fun acc d ->
        match d with
        | SCap { i; j; c; _ } ->
            let add acc a bt v = if a >= 0 && bt >= 0 then (a, bt, v) :: acc else acc in
            add (add (add (add acc i i c) j j c) i j (-.c)) j i (-.c)
        | SRes _ | SDiode _ | SBjt _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> acc)
      [] sim.sdevs
  in
  (g_entries, c_entries)


type bjt_op = { q_name : string; vbe : float; vce : float; ic : float; ib : float }

let bjt_report sim x =
  let vof i = if i < 0 then 0.0 else x.(i) in
  let nvt = Models.boltzmann_vt in
  let rev =
    Array.fold_left
      (fun acc d ->
        match d with
        | SBjt { name; c; b; e; m; _ } ->
            let vbe = vof b -. vof e and vbc = vof b -. vof c in
            let ift, _ = Models.junction_current ~is:m.Models.q_is ~nvt vbe in
            let irt, _ = Models.junction_current ~is:m.Models.q_is ~nvt vbc in
            let ic = ift -. irt -. (irt /. m.Models.q_br) in
            let ib = (ift /. m.Models.q_bf) +. (irt /. m.Models.q_br) in
            { q_name = name; vbe; vce = vof c -. vof e; ic; ib } :: acc
        | SRes _ | SCap _ | SDiode _ | SVsrc _ | SIsrc _ | SVcvs _ | SVccs _ -> acc)
      [] sim.sdevs
  in
  List.rev rev
