(** Text serialisation of netlists in a SPICE-flavoured card format,
    so circuits can be exported to (and reimported from) files, diffed
    and shared.

    Format: one device per line, [*]/[;] comments, [+] continuation
    lines, blank lines ignored, optional [.end] terminator.

    {v
    * basic cml buffer
    V vdd vgnd 0 DC 3.3
    R x1.r1 vgnd x1.on 500
    C x1.cn x1.on 0 95f
    Q x1.q1 x1.on in.p x1.ce BF=100 IS=4e-19
    Q det.q45 vout vtest x1.op x1.on      ; dual emitter
    D d1 a k
    V vin in.p 0 PULSE(3.05 3.3 0 50p 50p 4.95n 10n)
    I ib n1 0 DC 1u
    E e1 out 0 cp cn 10
    G g1 out 0 cp cn 1m
    .end
    v}

    Values accept engineering suffixes ([f p n u m k meg g t]) and the
    [e] exponent notation.  Node ["0"] is ground.  Device parameters
    default to {!Models.default_bjt} / {!Models.default_diode} fields
    when omitted. *)

exception Parse_error of { line : int; message : string }

val to_string : Netlist.t -> string
(** Render the netlist; parsing the result yields an equivalent
    netlist (same devices, names, nodes and parameters). *)

val of_string : string -> Netlist.t
(** Parse a netlist.
    @raise Parse_error on malformed input. *)

val write_file : path:string -> Netlist.t -> unit

val read_file : path:string -> Netlist.t
(** @raise Parse_error or [Sys_error]. *)

val parse_value : string -> float option
(** Parse one numeric token with engineering suffixes
    (["2.2k"] = 2200, ["10p"] = 1e-11, ["3meg"] = 3e6). *)

val format_value : float -> string
(** Render a value with an engineering suffix when exact. *)
