(** Transient analysis: trapezoidal integration with a backward-Euler
    start-up step after DC and after every source breakpoint,
    Newton-failure step halving, and an optional predictor-based
    local-truncation-error control. *)

type config = {
  tstop : float;  (** end time (s) *)
  max_step : float;  (** largest accepted step *)
  min_step : float;  (** below this a Newton failure is fatal *)
  lte_control : bool;  (** enable predictor-corrector step control *)
  record_every : int;
      (** keep one sample out of this many (1 = all; 0 = record
          nothing: [times]/[data] stay empty and measurements come
          from the streaming observers alone) *)
}

val config : ?max_step:float -> ?min_step:float -> ?lte_control:bool -> ?record_every:int ->
  tstop:float -> unit -> config
(** Defaults: [max_step = tstop /. 200.], [min_step = max_step /. 1e6],
    [lte_control = true], [record_every = 1].  The tolerances of the
    LTE acceptance test come from {!Engine.options}
    ([lte_reltol_factor], [lte_abstol]). *)

type stats = {
  accepted_steps : int;  (** committed time steps *)
  rejected_steps : int;
      (** steps retried after a Newton failure or an LTE rejection *)
  lte_rejections : int;
      (** of [rejected_steps], how many were LTE rejections (the
          Newton solve converged but the predictor band failed) *)
  newton_iters : int;  (** Newton iterations spent in this run *)
  device_loads : int;  (** junction-device load opportunities *)
  bypassed_loads : int;
      (** of [device_loads], how many replayed cached stamps
          ({!Engine.options.bypass}) *)
  guided_seeds : int;
      (** Newton solves rescued by the [?guide] trajectory: the warm DC
          start, plus accepted steps whose own-point seed diverged and
          whose guide-seeded retry converged (0 when no guide was
          given).  Retries of a rejected instant do not inflate this
          count. *)
  cold_fallbacks : int;
      (** seeds that diverged and triggered the next fallback: steps
          whose own-point seed failed (a guide-seeded retry follows
          when a guide is present), plus a guided DC start that fell
          back to the homotopy ladder *)
}

type result = {
  times : float array;
  data : float array array;  (** [data.(k)] is the solution vector at [times.(k)] *)
  sim : Engine.sim;
  stats : stats;
}

type observers
(** A streaming probe set: selected unknowns are sampled on every
    {e accepted} step into bounded per-probe buffers, without
    materialising the dense [times]/[data] matrix.  Because observers
    see every accepted step, measurements taken from probes are immune
    to [record_every] downsampling: with [record_every > 1] the dense
    matrix can alias narrow extrema (e.g. the excursion minimum a
    defect campaign classifies on), while the streamed samples cannot.
    Campaigns therefore measure from probes and keep only a thinned
    dense trajectory. *)

val observers :
  ?on_step:(float -> float array -> unit) -> (string * int) list -> observers
(** [observers probes] builds a probe set from [(name, unknown index)]
    pairs — node indices from {!Engine.node_unknown} (ground, [-1],
    streams zeros) or branch indices from {!Engine.branch_unknown}.
    [on_step] is called after the probes are sampled at each accepted
    step with the time and the full solution vector (do not retain the
    vector: it is reused by the step loop).
    @raise Invalid_argument on an index below [-1]. *)

val observe : observers option -> float -> float array -> unit
(** The step-loop dispatch: sample every probe (and run [on_step]) at
    an accepted step, or return immediately when [None].  Exposed so
    the overhead benchmark can measure the observers-disabled cost of
    the hook — callers of {!run} never need it. *)

val probe_names : observers -> string list

val probe_length : observers -> int
(** Samples recorded so far (accepted steps observed, including the
    initial point). *)

val probe_samples : observers -> string -> float array * float array
(** [(times, values)] streamed by the named probe; both arrays have
    {!probe_length} elements.
    @raise Not_found when no probe has that name. *)

val probe_list : observers -> (string * float array * float array) list
(** All probes as [(name, times, values)], in declaration order. *)

val collect_breakpoints : Netlist.t -> tstop:float -> float array
(** Sorted source-waveform breakpoints up to and including [tstop].
    Precompute once and pass as [?breakpoints] when running many
    variants of the same stimulus (defect injection adds only
    resistors and capacitors, so the golden schedule stays valid). *)

val run :
  ?x0:float array ->
  ?guide:result ->
  ?breakpoints:float array ->
  ?observers:observers ->
  Engine.sim ->
  Netlist.t ->
  config ->
  result
(** Run a transient from the DC operating point at [t = 0] (or from
    [x0] when given).  The netlist is only used to collect source
    breakpoints; it must be the one the [sim] was compiled from.

    [guide] warm-starts the run from a previously computed trajectory
    of a layout-compatible sim (same unknown count — checked, silently
    ignored otherwise): the DC solve is seeded from the guide's first
    point, and a step whose own-point Newton seed diverges is retried
    from the guide sample nearest in time before the usual step
    halving.  The previous accepted point stays the primary per-step
    seed — it keeps the junction voltages inside the device-bypass
    window, which a foreign (nominal) seed would evict every step.
    Results are bit-identical in structure to an unguided run; only
    Newton iteration counts change.

    [breakpoints] overrides breakpoint collection with a precomputed
    schedule from {!collect_breakpoints}.

    [observers] streams selected unknowns at every accepted step —
    including the initial point and the steps a [record_every > 1]
    configuration drops from the dense matrix.  On a run with
    [record_every = 1] the streamed samples are bit-identical to the
    corresponding rows of [data]; with [record_every = k] the dense
    matrix holds every k-th streamed sample.  Without observers the
    per-step cost is a single branch (gated alongside the telemetry
    hooks in [make telemetry-overhead]).

    When the sim carries an {!Introspect} recorder
    ({!Engine.set_introspect}), the step loop additionally records the
    dt timeline with cause tags (accept / breakpoint restart /
    guide rescue / LTE reject / Newton reject) and, per LTE
    rejection, which node forced the step down and the rejection
    cascade depth.  Recording never changes results: the accept
    decision stays with the plain LTE band test, and the blame scan
    only reads.  Without a recorder each hook is one load and one
    branch (gated in [make telemetry-overhead]).

    @raise Engine.No_convergence when a step fails at [min_step]. *)

type lane_result =
  | Lane_done of result  (** the lane ran to [tstop] *)
  | Lane_failed of string
      (** the lane's Newton solve failed at [min_step] (the
          {!Engine.No_convergence} message) or its DC start diverged *)
  | Lane_incompatible
      (** the lane's unknown count differs from lane 0's, so it could
          not share the batch workspace — run it scalar instead *)

val run_batch :
  ?guide:result ->
  ?breakpoints:float array ->
  (Engine.sim * observers option) array ->
  Netlist.t ->
  config ->
  lane_result array
(** Advance every lane (a compiled variant of one stimulus, plus its
    probe set) through the transient in lockstep: the lanes share one
    macro time grid — the guide's accepted instants when [guide] is
    given, else source breakpoints padded with a coarse uniform grid —
    and between grid points each lane sub-steps under its own adaptive
    control, re-synchronising at each grid point through a flat
    {!Cml_numerics.Batch} plane.  A lane that diverges retires from
    the batch immediately ([Lane_failed]) without stalling the rest;
    the others never see its failure.

    Lane 0's unknown count fixes the batch width; lanes with a
    different layout are reported [Lane_incompatible] without running.
    [guide] seeds each compatible lane exactly like {!run} (and is
    ignored, per lane, on a layout mismatch).

    Because a lane's steps are clamped to the macro grid, its time
    points are not bit-identical to a scalar {!run} of the same sim —
    classification-level results (probe measurements, convergence
    outcome) are what batch and scalar runs share.  Results are
    returned in lane order.

    Introspection is tagged per lane for free: each lane owns its sim,
    so attaching a recorder per sim ({!Engine.set_introspect}) yields
    per-lane Newton/LTE/dt records — a [Lane_failed] retirement
    becomes explainable from that lane's recorder alone. *)

val node_trace : result -> Netlist.node -> float array
(** Voltage samples of a node, aligned with [times]. *)

val diff_trace : result -> Netlist.node -> Netlist.node -> float array
(** Differential voltage [v a - v b] over time. *)
