(** Transient analysis: trapezoidal integration with a backward-Euler
    start-up step after DC and after every source breakpoint,
    Newton-failure step halving, and an optional predictor-based
    local-truncation-error control. *)

type config = {
  tstop : float;  (** end time (s) *)
  max_step : float;  (** largest accepted step *)
  min_step : float;  (** below this a Newton failure is fatal *)
  lte_control : bool;  (** enable predictor-corrector step control *)
  record_every : int;  (** keep one sample out of this many (1 = all) *)
}

val config : ?max_step:float -> ?min_step:float -> ?lte_control:bool -> ?record_every:int ->
  tstop:float -> unit -> config
(** Defaults: [max_step = tstop /. 200.], [min_step = max_step /. 1e6],
    [lte_control = true], [record_every = 1]. *)

type result = {
  times : float array;
  data : float array array;  (** [data.(k)] is the solution vector at [times.(k)] *)
  sim : Engine.sim;
}

val run : ?x0:float array -> Engine.sim -> Netlist.t -> config -> result
(** Run a transient from the DC operating point at [t = 0] (or from
    [x0] when given).  The netlist is only used to collect source
    breakpoints; it must be the one the [sim] was compiled from.
    @raise Engine.No_convergence when a step fails at [min_step]. *)

val node_trace : result -> Netlist.node -> float array
(** Voltage samples of a node, aligned with [times]. *)

val diff_trace : result -> Netlist.node -> Netlist.node -> float array
(** Differential voltage [v a - v b] over time. *)
