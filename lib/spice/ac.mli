(** Small-signal AC analysis: linearise the circuit at its DC
    operating point and solve [(G + j*omega*C) x = b] across a
    frequency sweep.  Used to characterise detector bandwidth and
    comparator gain. *)

type point = {
  freq : float;
  re : float array;  (** real part of every unknown *)
  im : float array;
}

val run :
  ?x_op:float array ->
  Engine.sim ->
  source:string ->
  freqs:float array ->
  point list
(** Sweep with a unit-magnitude AC excitation on the named voltage
    source (all other independent sources are AC-quiet).  The
    operating point defaults to {!Engine.dc_operating_point}.
    @raise Not_found if [source] is not a voltage source of the
    compiled circuit.
    @raise Engine.No_convergence if the implicit DC solve fails. *)

val magnitude : point -> Netlist.node -> float
(** |V(node)| at this frequency point. *)

val phase_deg : point -> Netlist.node -> float
(** Phase of V(node) in degrees. *)

val gain_db : point -> Netlist.node -> float
(** 20 log10 |V(node)| (the excitation has unit magnitude). *)
