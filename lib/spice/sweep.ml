(* The sweep re-uses the transient machinery's trick of evaluating
   sources at a "time": the swept source's waveform is replaced by a
   piecewise-linear map from the point index to the swept value, so a
   single compiled sim serves every point and warm starts carry the
   hysteresis state. *)

let m_points = Cml_telemetry.Metrics.counter "sweep.points"

let vsource_sweep_full ?options ?(warm_start = true) net ~source ~values =
  let net = Netlist.copy net in
  (match Netlist.get_device net source with
  | Netlist.Vsource v ->
      let knots = Array.mapi (fun i x -> (float_of_int i, x)) values in
      Netlist.set_device net source (Netlist.Vsource { v with wave = Waveform.Pwl knots })
  | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Diode _ | Netlist.Bjt _
  | Netlist.Isource _ | Netlist.Vcvs _ | Netlist.Vccs _ ->
      raise Not_found);
  let sim = Engine.compile ?options net in
  let n = Array.length values in
  let out = Array.make n [||] in
  let stats0 = Engine.solver_stats sim in
  let span = Cml_telemetry.Trace.start () in
  let prev = ref None in
  for i = 0 to n - 1 do
    let time = float_of_int i in
    let x =
      match !prev with
      | None -> Engine.dc_operating_point ~time sim
      | Some x0 -> Engine.dc_from ~time sim x0
    in
    out.(i) <- x;
    if warm_start then prev := Some x
  done;
  Cml_telemetry.Metrics.add m_points n;
  Engine.publish_metrics ~since:stats0 sim;
  Cml_telemetry.Trace.finish ~cat:"sim" "sweep" span;
  (sim, out)

let vsource_sweep ?options ?warm_start net ~source ~values =
  snd (vsource_sweep_full ?options ?warm_start net ~source ~values)
