type point = { freq : float; re : float array; im : float array }

let run ?x_op sim ~source ~freqs =
  let x = match x_op with Some x -> x | None -> Engine.dc_operating_point sim in
  let g_entries, c_entries = Engine.ac_system sim x in
  let n = Engine.unknown_count sim in
  let br = Engine.branch_unknown sim source in
  let b_re = Array.make n 0.0 and b_im = Array.make n 0.0 in
  b_re.(br) <- 1.0;
  let solve_at freq =
    let omega = 2.0 *. Float.pi *. freq in
    let m = Cml_numerics.Cdense.create n in
    List.iter (fun (i, j, g) -> Cml_numerics.Cdense.add_entry m i j ~re:g ~im:0.0) g_entries;
    List.iter
      (fun (i, j, c) -> Cml_numerics.Cdense.add_entry m i j ~re:0.0 ~im:(omega *. c))
      c_entries;
    let re, im = Cml_numerics.Cdense.solve m ~b_re ~b_im in
    { freq; re; im }
  in
  Array.to_list (Array.map solve_at freqs)

let complex_of point nd =
  let i = Engine.node_unknown nd in
  if i < 0 then (0.0, 0.0) else (point.re.(i), point.im.(i))

let magnitude point nd =
  let re, im = complex_of point nd in
  Float.hypot re im

let phase_deg point nd =
  let re, im = complex_of point nd in
  Float.atan2 im re *. 180.0 /. Float.pi

let gain_db point nd = 20.0 *. Float.log10 (Float.max 1e-30 (magnitude point nd))
