(* Command-line interface to the cml-dft library: run the paper's
   experiments, inspect circuits, characterise detectors and dump
   waveforms to CSV for plotting. *)

module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module T = Cml_spice.Transient
module B = Cml_cells.Builder
module Dft = Cml_dft

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared arguments *)

let freq_arg =
  let doc = "Stimulus frequency in Hz." in
  Arg.(value & opt float 100e6 & info [ "f"; "freq" ] ~docv:"HZ" ~doc)

let pipe_arg =
  let doc = "Collector-emitter pipe resistance (ohm) injected on the DUT's Q3; 0 = fault-free." in
  Arg.(value & opt float 0.0 & info [ "p"; "pipe" ] ~docv:"OHM" ~doc)

let csv_arg =
  let doc = "Write waveforms/series to this CSV file." in
  Arg.(value & opt (some string) None & info [ "o"; "csv" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel simulation batches; $(b,0) means one per core (default: \
     $(b,CML_DFT_JOBS), then available cores - 1)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let apply_jobs = function
  | None -> ()
  | Some n when n >= 0 -> Cml_runtime.Pool.set_default_jobs n
  | Some n ->
      Printf.eprintf "cmldft: --jobs must be >= 1, or 0 for one job per core (got %d)\n" n;
      exit 2

let pipe_option pipe = if pipe > 0.0 then Some pipe else None

let no_warm_start_arg =
  let doc =
    "Cold-start every variant simulation instead of seeding Newton from the nominal \
     (fault-free) solution; an escape hatch for debugging warm-start interactions."
  in
  Arg.(value & flag & info [ "no-warm-start" ] ~doc)

let probe_arg =
  let doc =
    "Comma-separated node names to probe with streaming observers (sampled at every \
     accepted solver step, immune to $(b,record_every) thinning).  Node names as in the \
     exported deck, e.g. $(b,x3.op,x3.on)."
  in
  Arg.(value & opt (list string) [] & info [ "probe" ] ~docv:"NODE,.." ~doc)

let vcd_out_arg =
  let doc = "Dump the probed waveforms as an analog VCD to this file." in
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc)

(* resolve --probe names against the netlist; exits with a listing of
   the valid names on a typo rather than raising *)
let resolve_probes net names =
  List.map
    (fun name ->
      match N.find_node net name with
      | Some nd -> (name, E.node_unknown nd)
      | None ->
          Printf.eprintf "cmldft: unknown node %S (see `cmldft export` for the deck)\n" name;
          exit 2)
    names

(* telemetry flags, shared by the simulation commands *)

let trace_arg =
  let doc =
    "Record spans/events while this command runs and write a Chrome-trace JSON file \
     (loadable in chrome://tracing and Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write this command's metrics-registry movement as JSON." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let manifest_arg =
  let doc = "Write a run manifest (JSON) for $(b,cmldft report)." in
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE" ~doc)

let events_arg =
  let doc =
    "Stream run events (JSONL, schema $(b,cml-dft-events/1)) to this file while the run is \
     in flight, for $(b,cmldft watch); $(b,-) streams to stderr."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

(* [with_telemetry ?events ~trace ~metrics f]: enable tracing when
   [--trace] was given and install the run-event sink when [--events]
   was, run [f], then drain the spans into the Chrome trace and the
   registry delta into the metrics file.  The sinks are written (and
   the event stream closed) even when [f] raises, so a crashed
   campaign still leaves its partial trace and stream behind. *)
let with_telemetry ?(events = None) ~trace ~metrics f =
  if trace <> None then Cml_telemetry.Trace.set_enabled true;
  (match events with
  | None -> ()
  | Some path -> Cml_telemetry.Events.(install (open_sink path)));
  let snap0 = Cml_telemetry.Metrics.snapshot () in
  let finish () =
    Cml_telemetry.Events.close ();
    (match trace with
    | None -> ()
    | Some path ->
        let events = Cml_telemetry.Trace.drain () in
        Cml_telemetry.Trace.write_chrome ~path events;
        Printf.printf "wrote %s (%d events)\n" path (List.length events));
    match metrics with
    | None -> ()
    | Some path ->
        let delta = Cml_telemetry.Metrics.diff snap0 (Cml_telemetry.Metrics.snapshot ()) in
        Cml_telemetry.Json.write_file path (Cml_telemetry.Metrics.to_json delta);
        Printf.printf "wrote %s\n" path
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* Minimal run framing for commands without a variant loop of their
   own (plan, diagnose): with a sink installed, bracket the work in
   run_start/run_end so the stream is a complete document. *)
let with_run_events ~kind f =
  if not (Cml_telemetry.Events.installed ()) then f ()
  else begin
    let t0 = Cml_telemetry.Clock.now_ns () in
    let ev = Cml_telemetry.Events.run_start ~kind ~total:0 () in
    let finish () =
      let wall_s = Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) in
      Cml_telemetry.Events.finish ev ~classes:[] ~wall_s ~utilization:[]
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* End-of-run pool attribution table (campaign, mc). *)
let print_utilization ~wall_s rows =
  if rows <> [] then begin
    Printf.printf "\nutilization (wall %.3f s):\n" wall_s;
    Printf.printf "  %6s %10s %6s %6s %14s\n" "domain" "busy" "ratio" "items" "longest stall";
    List.iter
      (fun u ->
        Printf.printf "  %6d %9.3fs %6.2f %6d %13.3fs\n" u.Cml_telemetry.Events.du_domain
          u.Cml_telemetry.Events.du_busy_s u.Cml_telemetry.Events.du_busy_ratio
          u.Cml_telemetry.Events.du_items u.Cml_telemetry.Events.du_longest_stall_s)
      rows
  end

(* ------------------------------------------------------------------ *)
(* chain: simulate the Figure-3 buffer chain *)

let chain_cmd =
  let stages_arg =
    Arg.(value & opt int 8 & info [ "n"; "stages" ] ~docv:"N" ~doc:"Chain length.")
  in
  let run freq pipe stages csv probe vcd trace metrics =
    with_telemetry ~trace ~metrics @@ fun () ->
    let chain = Cml_cells.Chain.build ~stages ~freq () in
    let golden = chain.Cml_cells.Chain.builder.B.net in
    let net =
      match pipe_option pipe with
      | None -> golden
      | Some r ->
          Cml_defects.Inject.apply golden
            (Cml_defects.Defect.Pipe { device = "x3.q3"; r })
    in
    let sim = E.compile net in
    let tstop = 2.0 /. freq in
    (* --vcd without --probe dumps every stage output pair *)
    let probes =
      match (probe, vcd) with
      | [], Some _ ->
          List.concat
            (List.init stages (fun i ->
                 let d = Cml_cells.Chain.output chain (i + 1) in
                 let name = Cml_cells.Chain.stage_name (i + 1) in
                 [ (name ^ ".p", E.node_unknown d.B.p); (name ^ ".n", E.node_unknown d.B.n) ]))
      | names, _ -> resolve_probes net names
    in
    let observers = match probes with [] -> None | ps -> Some (T.observers ps) in
    let r = T.run ?observers sim net (T.config ~tstop ~max_step:10e-12 ()) in
    let wave nd = Cml_wave.Wave.create r.T.times (T.node_trace r nd) in
    Printf.printf "%-8s %10s %10s %10s\n" "stage" "vlow" "vhigh" "swing";
    let named = ref [] in
    for i = 1 to stages do
      let d = Cml_cells.Chain.output chain i in
      let w = wave d.B.p in
      named := (Printf.sprintf "op%d" i, w) :: !named;
      let lo, hi = Cml_wave.Measure.extremes w ~t_from:(tstop /. 2.0) in
      Printf.printf "%-8d %8.4f V %8.4f V %7.1f mV\n" i lo hi ((hi -. lo) *. 1e3)
    done;
    let probed_waves =
      match observers with
      | None -> []
      | Some obs ->
          List.map (fun (name, ts, vs) -> (name, Cml_wave.Wave.create ts vs))
            (T.probe_list obs)
    in
    (match probed_waves with
    | [] -> ()
    | (_, w0) :: _ ->
        Printf.printf "probed %d node%s at %d accepted steps\n" (List.length probed_waves)
          (if List.length probed_waves = 1 then "" else "s")
          (Cml_wave.Wave.length w0));
    (match vcd with
    | None -> ()
    | Some path ->
        Cml_wave.Vcd_analog.write ~path probed_waves;
        Printf.printf "wrote %s\n" path);
    match csv with
    | None -> ()
    | Some path ->
        Cml_wave.Csv.write ~path (List.rev !named);
        Printf.printf "wrote %s\n" path
  in
  let info = Cmd.info "chain" ~doc:"Simulate the paper's buffer chain (optionally faulty)." in
  Cmd.v info
    Term.(const run $ freq_arg $ pipe_arg $ stages_arg $ csv_arg $ probe_arg $ vcd_out_arg
          $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* detector: characterise a built-in detector *)

let detector_cmd =
  let variant_arg =
    let doc = "Detector variant: 1 (single-sided) or 2 (vtest-biased)." in
    Arg.(value & opt int 1 & info [ "v"; "variant" ] ~docv:"V" ~doc)
  in
  let tstop_arg =
    Arg.(value & opt float 120e-9 & info [ "t"; "tstop" ] ~docv:"S" ~doc:"Simulated time.")
  in
  let run freq pipe variant tstop csv vcd trace metrics =
    with_telemetry ~trace ~metrics @@ fun () ->
    let proc = Cml_cells.Process.default in
    let v =
      match variant with
      | 1 -> Dft.Experiment.V1 Dft.Detector.v1_default
      | 2 ->
          Dft.Experiment.V2
            { cfg = Dft.Detector.v2_default; vtest = Dft.Detector.vtest_test proc }
      | n -> failwith (Printf.sprintf "unknown variant %d" n)
    in
    let r =
      Dft.Experiment.detector_response ~variant:v ~freq ~pipe:(pipe_option pipe) ~tstop ()
    in
    Printf.printf "excursion   : %.3f V\n" r.Dft.Experiment.excursion;
    Printf.printf "vout drop   : %.3f V\n" r.Dft.Experiment.vout_drop;
    Printf.printf "tstability  : %s\n"
      (match r.Dft.Experiment.tstability with
      | Some t -> Printf.sprintf "%.1f ns" (t *. 1e9)
      | None -> "beyond tstop");
    Printf.printf "t95         : %s\n"
      (match r.Dft.Experiment.t_settle with
      | Some t -> Printf.sprintf "%.1f ns" (t *. 1e9)
      | None -> "beyond tstop");
    Printf.printf "Vmax        : %.3f V\n" r.Dft.Experiment.vmax;
    (match csv with
    | None -> ()
    | Some path ->
        Cml_wave.Csv.write ~path
          [
            ("vout", r.Dft.Experiment.vout);
            ("op", r.Dft.Experiment.out_p);
            ("opb", r.Dft.Experiment.out_n);
          ];
        Printf.printf "wrote %s\n" path);
    (match vcd with
    | None -> ()
    | Some path ->
        Cml_wave.Vcd_analog.write ~path
          [
            ("det.vout", r.Dft.Experiment.vout);
            ("op", r.Dft.Experiment.out_p);
            ("opb", r.Dft.Experiment.out_n);
          ];
        Printf.printf "wrote %s\n" path);
    print_string (Cml_wave.Ascii_plot.render ~height:12 [ ("vout", r.Dft.Experiment.vout) ])
  in
  let info = Cmd.info "detector" ~doc:"Characterise a built-in amplitude detector." in
  Cmd.v info
    Term.(const run $ freq_arg $ pipe_arg $ variant_arg $ tstop_arg $ csv_arg $ vcd_out_arg
          $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* sharing: the Figure-14 sweep *)

let sharing_cmd =
  let ns_arg =
    let doc = "Comma-separated sharing group sizes." in
    Arg.(value & opt (list int) [ 1; 10; 20; 30; 45; 60 ] & info [ "n" ] ~docv:"N,.." ~doc)
  in
  let run ns csv =
    let pts = Dft.Sharing.sweep_n ~multi_emitter:true ~ns () in
    Printf.printf "%-6s %10s %10s %10s\n" "N" "vout" "vfb" "flag";
    List.iter
      (fun p ->
        Printf.printf "%-6d %8.4f V %8.4f V %8.4f V\n" p.Dft.Sharing.n p.Dft.Sharing.vout
          p.Dft.Sharing.vfb p.Dft.Sharing.flag)
      pts;
    (match csv with
    | None -> ()
    | Some path ->
        Cml_wave.Csv.write_table ~path ~header:[ "n"; "vout"; "vfb"; "flag" ]
          (List.map
             (fun p ->
               [ float_of_int p.Dft.Sharing.n; p.Dft.Sharing.vout; p.Dft.Sharing.vfb;
                 p.Dft.Sharing.flag ])
             pts);
        Printf.printf "wrote %s\n" path);
    let h = Dft.Experiment.hysteresis () in
    match h.Dft.Experiment.switch_up with
    | Some upper ->
        Printf.printf "safe sharing limit (vout > %.3f V): N = %d\n" upper
          (Dft.Sharing.max_safe_sharing pts ~upper_threshold:upper)
    | None -> ()
  in
  let info = Cmd.info "sharing" ~doc:"Load-sharing sweep (paper Fig. 14)." in
  Cmd.v info Term.(const run $ ns_arg $ csv_arg)

(* ------------------------------------------------------------------ *)
(* campaign: defect-injection campaign *)

let campaign_cmd =
  let bench_arg =
    let doc =
      "ISCAS-style $(b,.bench) circuit to attack instead of the built-in buffer chain.  \
       The circuit is compiled onto the CML cell library ($(b,Cml_cells.Compile)): one \
       series-gated cell per net, free rail-swap NOTs, master-slave flip-flops on a \
       global clock, fanout-scaled tail currents."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.bench" ~doc)
  in
  let dut_arg =
    let doc =
      "Instance to attack: a chain stage like $(b,x3) (the default), or — with a \
       $(b,.bench) target — a compiled cell name (a declared output or $(b,n)$(i,ID); \
       default: the first gate in topological order)."
    in
    Arg.(value & opt (some string) None & info [ "dut" ] ~docv:"INST" ~doc)
  in
  let no_batch_arg =
    let doc =
      "Simulate one transient per defect instead of the variant-lockstep batch scheduler; \
       an escape hatch for isolating batch-scheduling interactions."
    in
    Arg.(value & flag & info [ "no-batch" ] ~doc)
  in
  let max_iter_arg =
    let doc =
      "Cap Newton iterations per solve (engine default 100).  Low caps (e.g. $(b,12)) are \
       a stress knob: solves that marginal defects make hard fail visibly instead of \
       grinding, which $(b,cmldft explain) then attributes step by step.  Recorded in the \
       run options so $(b,explain) re-simulates under the same cap."
    in
    Arg.(value & opt (some int) None & info [ "max-iter" ] ~docv:"N" ~doc)
  in
  let print_entries c =
    List.iter
      (fun e ->
        let open Cml_defects.Campaign in
        match e.outcome with
        | Failed msg ->
            Printf.printf "%-44s FAILED %s\n" (Cml_defects.Defect.describe e.defect) msg
        | Measured (m, f) ->
            Printf.printf "%-44s vlow=%.3f swing=%.3f%s%s%s\n"
              (Cml_defects.Defect.describe e.defect) m.dut_vlow m.dut_swing
              (if f.stuck then " STUCK" else "")
              (if f.excessive_excursion then " EXCURSION" else "")
              (if f.healed then " healed" else ""))
      c.Cml_defects.Campaign.entries;
    print_newline ();
    List.iter (fun (k, v) -> Printf.printf "%-24s %d\n" k v) (Cml_defects.Campaign.summary c)
  in
  let chain_campaign ~freq ~dut ~no_warm_start ~no_batch ~max_iter ~manifest =
    let golden = Cml_cells.Chain.build ~stages:8 ~freq () in
    let defects =
      Cml_defects.Sites.enumerate golden.Cml_cells.Chain.builder.B.net ~prefix:dut
        ~pipe_values:[ 1e3; 4e3 ]
    in
    Printf.printf "running %d defects on %s (%d jobs%s)...\n%!" (List.length defects) dut
      (Cml_runtime.Pool.default_jobs ())
      (if no_batch then ", unbatched" else "");
    Cml_defects.Campaign.run ~freq ~warm_start:(not no_warm_start) ~batch:(not no_batch)
      ?max_iter ?manifest ~defects ()
  in
  let bench_campaign ~freq ~path ~dut ~no_warm_start ~no_batch ~max_iter ~manifest =
    let circuit = Cml_logic.Bench_format.read_file ~path in
    let design = Cml_cells.Compile.compile ~freq circuit in
    let dut =
      match dut with Some d -> d | None -> Cml_cells.Compile.default_dut design
    in
    let dut_out =
      match Cml_cells.Compile.find_cell design dut with
      | Some d -> d
      | None ->
          Printf.eprintf "cmldft campaign: no compiled cell %S in %s\n" dut path;
          exit 2
    in
    if not (Cml_cells.Compile.physical design dut) then begin
      Printf.eprintf
        "cmldft campaign: cell %S is a free complement (no devices, no defect sites)\n" dut;
      exit 2
    end;
    let golden = Cml_cells.Compile.netlist design in
    let defects = Cml_defects.Sites.enumerate golden ~prefix:dut ~pipe_values:[ 1e3; 4e3 ] in
    let out_name = Cml_cells.Compile.default_output design in
    let final = List.assoc out_name design.Cml_cells.Compile.outputs in
    let cells, devices = Cml_cells.Compile.stats design in
    Printf.printf
      "compiled %s: %d cells, %d devices; attacking %s, measuring %s (%d defects, %d jobs%s)...\n%!"
      path cells devices dut out_name (List.length defects)
      (Cml_runtime.Pool.default_jobs ())
      (if no_batch then ", unbatched" else "");
    Cml_defects.Campaign.run_design ~freq ~warm_start:(not no_warm_start)
      ~batch:(not no_batch) ?max_iter ?manifest
      ~options:[ ("bench", path); ("dut", dut) ]
      ~golden ~input:design.Cml_cells.Compile.input ~dut:dut_out ~final ~defects ()
  in
  let run freq bench dut jobs no_warm_start no_batch max_iter trace metrics manifest events =
    apply_jobs jobs;
    with_telemetry ~events ~trace ~metrics @@ fun () ->
    let c =
      match bench with
      | None ->
          let dut = Option.value ~default:"x3" dut in
          chain_campaign ~freq ~dut ~no_warm_start ~no_batch ~max_iter ~manifest
      | Some path -> (
          match bench_campaign ~freq ~path ~dut ~no_warm_start ~no_batch ~max_iter ~manifest
          with
          | c -> c
          | exception Cml_logic.Bench_format.Parse_error { line; message } ->
              Printf.eprintf "cmldft campaign: bench parse error at line %d: %s\n" line
                message;
              exit 2
          | exception Sys_error msg ->
              Printf.eprintf "cmldft campaign: %s\n" msg;
              exit 2)
    in
    print_entries c;
    print_utilization ~wall_s:c.Cml_defects.Campaign.wall_s c.Cml_defects.Campaign.utilization;
    match manifest with Some path -> Printf.printf "wrote %s\n" path | None -> ()
  in
  let info =
    Cmd.info "campaign"
      ~doc:
        "Defect-injection campaign (paper section 5) on the buffer chain or a compiled \
         $(b,.bench) design."
  in
  Cmd.v info
    Term.(const run $ freq_arg $ bench_arg $ dut_arg $ jobs_arg $ no_warm_start_arg
          $ no_batch_arg $ max_iter_arg $ trace_arg $ metrics_arg $ manifest_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* diagnose: waveform-level drill-down on one defect *)

let diagnose_cmd =
  let bench_arg =
    let doc =
      "ISCAS-style $(b,.bench) circuit to diagnose on (compiled onto the CML cell \
       library); the health-profile rows become the attacked cell and every primary \
       output.  Without it, the built-in buffer chain is diagnosed."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.bench" ~doc)
  in
  let stages_arg =
    Arg.(value & opt int 8 & info [ "n"; "stages" ] ~docv:"N" ~doc:"Chain length.")
  in
  let dut_arg =
    Arg.(value & opt int 3 & info [ "dut" ] ~docv:"STAGE" ~doc:"Stage carrying the defect.")
  in
  let cell_arg =
    let doc =
      "With a $(b,.bench) target, the compiled cell to attack (default: the first gate \
       in topological order)."
    in
    Arg.(value & opt (some string) None & info [ "cell" ] ~docv:"INST" ~doc)
  in
  let pipe_arg =
    let doc = "Collector-emitter pipe resistance (ohm) injected on the DUT's Q3." in
    Arg.(value & opt float 3000.0 & info [ "p"; "pipe" ] ~docv:"OHM" ~doc)
  in
  let json_arg =
    let doc = "Write the structured diagnosis record (JSON) for $(b,cmldft report)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let plot_arg =
    Arg.(value & flag & info [ "plot" ] ~doc:"Render ASCII plots of the DUT and detector waves.")
  in
  let run freq pipe bench stages dut cell json vcd plot trace metrics events =
    with_telemetry ~events ~trace ~metrics @@ fun () ->
    with_run_events ~kind:"diagnose" @@ fun () ->
    let d, dut_wave_name =
      match bench with
      | None ->
          if dut < 1 || dut > stages then begin
            Printf.eprintf "cmldft diagnose: --dut must be within 1..%d\n" stages;
            exit 2
          end;
          let defect =
            Cml_defects.Defect.Pipe
              { device = Cml_cells.Chain.stage_name dut ^ ".q3"; r = pipe }
          in
          (Dft.Diagnose.run ~freq ~stages ~dut ~defect (),
           Cml_cells.Chain.stage_name dut ^ ".p")
      | Some path -> (
          match
            let circuit = Cml_logic.Bench_format.read_file ~path in
            let design = Cml_cells.Compile.compile ~freq circuit in
            let cell =
              match cell with
              | Some c -> c
              | None -> Cml_cells.Compile.default_dut design
            in
            (* prefer the cell's tail-source pipe (the chain default's
               x<i>.q3 analogue); fall back to the first pipe site so
               every gate topology resolves (a flip-flop's tails live
               in .m/.s) *)
            let pipes =
              List.filter
                (function Cml_defects.Defect.Pipe _ -> true | _ -> false)
                (Cml_defects.Sites.enumerate
                   (Cml_cells.Compile.netlist design)
                   ~prefix:cell ~pipe_values:[ pipe ])
            in
            let is_tail = function
              | Cml_defects.Defect.Pipe { device; _ } ->
                  String.length device >= 3
                  && String.sub device (String.length device - 3) 3 = ".q3"
              | _ -> false
            in
            let defect =
              match (List.find_opt is_tail pipes, pipes) with
              | Some d, _ -> d
              | None, d :: _ -> d
              | None, [] ->
                  Printf.eprintf
                    "cmldft diagnose: cell %S has no pipe site (free complement?)\n" cell;
                  exit 2
            in
            (Dft.Diagnose.run_design ~design ~dut:cell ~defect (), cell ^ ".p")
          with
          | r -> r
          | exception Cml_logic.Bench_format.Parse_error { line; message } ->
              Printf.eprintf "cmldft diagnose: bench parse error at line %d: %s\n" line
                message;
              exit 2
          | exception Sys_error msg ->
              Printf.eprintf "cmldft diagnose: %s\n" msg;
              exit 2)
    in
    print_string (Dft.Diagnose.render_text d);
    if plot then begin
      let dut_wave = List.assoc dut_wave_name d.Dft.Diagnose.waves in
      print_newline ();
      print_string (Cml_wave.Ascii_plot.render ~height:12 [ (dut_wave_name, dut_wave) ]);
      print_newline ();
      print_string
        (Cml_wave.Ascii_plot.render ~height:12 [ ("det.vout", d.Dft.Diagnose.detector_wave) ])
    end;
    (match json with
    | None -> ()
    | Some path ->
        Dft.Diagnose.write_json ~path d;
        Printf.printf "wrote %s\n" path);
    match vcd with
    | None -> ()
    | Some path ->
        Dft.Diagnose.write_vcd ~path d;
        Printf.printf "wrote %s\n" path
  in
  let doc =
    "Diagnose one defect at waveform level: per-stage signal health against the fault-free \
     circuit (the chain, or a compiled $(b,.bench) design), healing depth (paper section \
     5) and the detector-response timeline (Figs. 7/8/10), with JSON and analog-VCD \
     outputs."
  in
  let info = Cmd.info "diagnose" ~doc in
  Cmd.v info
    Term.(const run $ freq_arg $ pipe_arg $ bench_arg $ stages_arg $ dut_arg $ cell_arg
          $ json_arg $ vcd_out_arg $ plot_arg $ trace_arg $ metrics_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* area *)

let area_cmd =
  let run () =
    let schemes =
      [
        Dft.Area.Menon_xor;
        Dft.Area.Variant1 Dft.Detector.v1_default;
        Dft.Area.Variant2 Dft.Detector.v2_default;
        Dft.Area.Variant3 { multi_emitter = true; sharing = 45 };
      ]
    in
    Printf.printf "%-40s %8s %8s %8s %10s\n" "scheme" "BJT" "res" "cap" "overhead";
    List.iter
      (fun s ->
        let b, r, c = Dft.Area.per_gate_counts s in
        Printf.printf "%-40s %8.2f %8.2f %8.2f %9.0f%%\n" (Dft.Area.scheme_name s) b r c
          (100.0 *. Dft.Area.overhead_fraction s))
      schemes
  in
  let info = Cmd.info "area" ~doc:"Area overhead of the DFT schemes." in
  Cmd.v info Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* mc: Monte-Carlo robustness *)

let mc_cmd =
  let samples_arg =
    Arg.(value & opt int 40 & info [ "s"; "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples.")
  in
  let seed_arg = Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let gates_arg =
    Arg.(value & opt int 10 & info [ "g"; "gates" ] ~docv:"N" ~doc:"Monitored gates per block.")
  in
  let run samples seed gates jobs no_warm_start trace metrics manifest events =
    apply_jobs jobs;
    with_telemetry ~events ~trace ~metrics @@ fun () ->
    let r =
      Dft.Montecarlo.run ~n:gates ~warm_start:(not no_warm_start) ?manifest ~samples ~seed ()
    in
    Printf.printf "samples       : %d good + %d faulty\n" samples samples;
    Printf.printf "false alarms  : %d\n" r.Dft.Montecarlo.false_alarms;
    Printf.printf "missed        : %d\n" r.Dft.Montecarlo.missed;
    Printf.printf "good vout     : mean %.4f V, sigma %.1f mV, worst %.4f V\n"
      (Cml_numerics.Stats.mean r.Dft.Montecarlo.good_vouts)
      (1e3 *. Cml_numerics.Stats.stddev r.Dft.Montecarlo.good_vouts)
      r.Dft.Montecarlo.good_vout_min;
    Printf.printf "margin        : %.3f V\n" r.Dft.Montecarlo.separation;
    print_utilization ~wall_s:r.Dft.Montecarlo.wall_s r.Dft.Montecarlo.utilization;
    match manifest with Some path -> Printf.printf "wrote %s\n" path | None -> ()
  in
  let info = Cmd.info "mc" ~doc:"Monte-Carlo robustness of the DFT under process spread." in
  Cmd.v info
    Term.(const run $ samples_arg $ seed_arg $ gates_arg $ jobs_arg $ no_warm_start_arg
          $ trace_arg $ metrics_arg $ manifest_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* logic: run a .bench circuit through the digital test flow *)

let logic_cmd =
  let file_arg =
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"ISCAS-style .bench netlist (default: the embedded s27).")
  in
  let patterns_arg =
    Arg.(value & opt int 256 & info [ "p"; "patterns" ] ~docv:"N" ~doc:"LFSR pattern count.")
  in
  let vcd_arg =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD trace.")
  in
  let run file patterns vcd jobs =
    apply_jobs jobs;
    let c =
      match file with
      | Some path -> Cml_logic.Bench_format.read_file ~path
      | None -> Cml_logic.Bench_format.s27 ()
    in
    let width = List.length c.Cml_logic.Circuit.inputs in
    Printf.printf "circuit: %d nets, %d inputs, %d outputs, %d flip-flops, depth %d\n"
      (Cml_logic.Circuit.num_nets c) width
      (List.length c.Cml_logic.Circuit.outputs)
      (Array.length c.Cml_logic.Circuit.dffs)
      (Cml_logic.Timing.depth c);
    Printf.printf "datapath clock floor at the 54 ps CML gate delay: %.2f GHz\n"
      (1.0 /. Cml_logic.Timing.min_clock_period c ~gate_delay:54e-12 /. 1e9);
    let initial = Cml_logic.Sim.initial c Cml_logic.Value.F in
    let pats =
      Cml_logic.Patterns.lfsr_patterns (Cml_logic.Patterns.lfsr_create ()) ~width ~count:patterns
    in
    Printf.printf "toggle coverage (%d LFSR patterns): %.1f%%\n" patterns
      (100.0 *. Cml_logic.Coverage.coverage_after c ~initial ~patterns:pats);
    let cov, det, total = Cml_logic.Faultsim.coverage c ~initial ~patterns:pats in
    Printf.printf "stuck-at coverage: %.1f%% (%d/%d)\n" (100.0 *. cov) det total;
    let directed = Cml_logic.Directed.directed_patterns c ~initial ~seed:7 () in
    (match Cml_logic.Directed.patterns_to_full_coverage c ~initial ~patterns:directed with
    | Some n -> Printf.printf "directed patterns to full toggle coverage: %d\n" n
    | None -> print_endline "directed generation did not reach full coverage");
    match vcd with
    | None -> ()
    | Some path ->
        let _, frames = Cml_logic.Sim.run c initial ~patterns:pats in
        Cml_logic.Vcd.write ~path c ~frames;
        Printf.printf "wrote %s\n" path
  in
  let info = Cmd.info "logic" ~doc:"Digital test flow on a .bench circuit." in
  Cmd.v info Term.(const run $ file_arg $ patterns_arg $ vcd_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* export: write a circuit as a SPICE-flavoured deck *)

let export_cmd =
  let stages_arg =
    Arg.(value & opt int 8 & info [ "n"; "stages" ] ~docv:"N" ~doc:"Chain length.")
  in
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  let run freq stages path =
    let chain = Cml_cells.Chain.build ~stages ~freq () in
    Cml_spice.Netlist_io.write_file ~path chain.Cml_cells.Chain.builder.B.net;
    Printf.printf "wrote %s (%d devices)\n" path
      (N.device_count chain.Cml_cells.Chain.builder.B.net)
  in
  let info = Cmd.info "export" ~doc:"Export the buffer-chain netlist as a text deck." in
  Cmd.v info Term.(const run $ freq_arg $ stages_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* op: operating-point report *)

let op_cmd =
  let stages_arg =
    Arg.(value & opt int 3 & info [ "n"; "stages" ] ~docv:"N" ~doc:"Chain length.")
  in
  let bench_arg =
    let doc =
      "Compile this ISCAS-style $(b,.bench) circuit onto the CML cell library and solve \
       its DC operating point, reporting design size, solver/ordering statistics and the \
       primary-output levels instead of the per-transistor table."
    in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"FILE.bench" ~doc)
  in
  let run pipe stages bench events =
    with_telemetry ~events ~trace:None ~metrics:None @@ fun () ->
    with_run_events ~kind:"op" @@ fun () ->
    match bench with
    | Some path -> (
        match Cml_logic.Bench_format.read_file ~path with
        | exception Cml_logic.Bench_format.Parse_error { line; message } ->
            Printf.eprintf "cmldft op: bench parse error at line %d: %s\n" line message;
            exit 2
        | exception Sys_error msg ->
            Printf.eprintf "cmldft op: %s\n" msg;
            exit 2
        | circuit ->
            let design = Cml_cells.Compile.compile circuit in
            let cells, devices = Cml_cells.Compile.stats design in
            let sim = E.compile (Cml_cells.Compile.netlist design) in
            let x = E.dc_operating_point sim in
            let s = E.solver_stats sim in
            Printf.printf "compiled %s: %d cells, %d devices, %d unknowns\n" path cells
              devices (E.unknown_count sim);
            Printf.printf
              "solver: %d Newton iters, ordering %s, nnz(L+U) %d, fill ratio %.2f\n"
              s.E.newton_iters
              (if s.E.lu_ordering = "" then "dense" else s.E.lu_ordering)
              s.E.lu_nnz_factors s.E.lu_fill_ratio;
            Printf.printf "%-12s %10s %10s\n" "output" "true" "complement";
            List.iter
              (fun (nm, d) ->
                Printf.printf "%-12s %8.3f V %8.3f V\n" nm
                  (E.voltage x d.B.p) (E.voltage x d.B.n))
              design.Cml_cells.Compile.outputs)
    | None ->
        let chain = Cml_cells.Chain.build_dc ~stages ~value:true () in
        let golden = chain.Cml_cells.Chain.builder.B.net in
        let net =
          match pipe_option pipe with
          | None -> golden
          | Some r ->
              Cml_defects.Inject.apply golden (Cml_defects.Defect.Pipe { device = "x3.q3"; r })
        in
        let sim = E.compile net in
        let x = E.dc_operating_point sim in
        Printf.printf "%-16s %10s %10s %12s %12s\n" "device" "VBE" "VCE" "IC" "IB";
        List.iter
          (fun (o : E.bjt_op) ->
            Printf.printf "%-16s %8.3f V %8.3f V %9.3f uA %9.3f uA\n" o.E.q_name o.E.vbe
              o.E.vce (o.E.ic *. 1e6) (o.E.ib *. 1e6))
          (E.bjt_report sim x)
  in
  let info =
    Cmd.info "op"
      ~doc:"SPICE-style transistor operating-point report (or a compiled-design DC summary)."
  in
  Cmd.v info Term.(const run $ pipe_arg $ stages_arg $ bench_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* lint: the unified static-analysis pass *)

let lint_cmd =
  let module A = Cml_analysis in
  let files_arg =
    let doc =
      "Files to lint: SPICE-flavoured netlist decks (ERC + CML rules) or $(b,.bench) \
       circuits (SCOAP testability rules).  With no files, a built-in self-check runs over \
       the paper's chain, an instrumented chain with its insertion plan, and the embedded \
       s27 benchmark."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let fail_on_arg =
    let doc = "Exit non-zero when a finding of at least this severity exists: $(docv) is \
               $(b,error), $(b,warning) or $(b,info)." in
    let level =
      Arg.enum
        [ ("error", A.Diagnostic.Error); ("warning", A.Diagnostic.Warning);
          ("info", A.Diagnostic.Info) ]
    in
    Arg.(value & opt level A.Diagnostic.Error & info [ "fail-on" ] ~docv:"LEVEL" ~doc)
  in
  let rules_arg =
    Arg.(value & flag
         & info [ "rules"; "list-rules" ] ~doc:"Print the full rule catalog and exit.")
  in
  let max_share_arg =
    let doc = "Safe sharing limit for the DFT-coverage audit (paper section 6.4)." in
    Arg.(value & opt int 45 & info [ "max-share" ] ~docv:"N" ~doc)
  in
  let print_rules () =
    Printf.printf "%-10s %-7s %-8s %s\n" "rule" "family" "severity" "description";
    List.iter
      (fun (r : A.Rules.info) ->
        Printf.printf "%-10s %-7s %-8s %s\n" r.A.Rules.id r.A.Rules.family
          (A.Diagnostic.severity_name r.A.Rules.severity)
          r.A.Rules.title)
      A.Rules.all
  in
  let builtin_targets max_share =
    let chain = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
    let instrumented = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
    let plan = Dft.Insertion.instrument instrumented.Cml_cells.Chain.builder in
    [
      ("builtin:chain8", A.Lint.netlist chain.Cml_cells.Chain.builder.B.net);
      ( "builtin:instrumented-chain8",
        A.Lint.netlist instrumented.Cml_cells.Chain.builder.B.net );
      ( "builtin:insertion-plan",
        Dft.Audit.check ~max_safe_share:max_share plan instrumented.Cml_cells.Chain.builder );
      ("builtin:s27.bench", A.Lint.circuit (Cml_logic.Bench_format.s27 ()));
    ]
  in
  let json_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let lint_code files json fail_on rules max_share =
    if rules then (print_rules (); 0)
    else
      match
        if files = [] then builtin_targets max_share else A.Lint.files files
      with
      | exception Cml_spice.Netlist_io.Parse_error { line; message } ->
          Printf.eprintf "cmldft lint: netlist parse error at line %d: %s\n" line message;
          2
      | exception Cml_logic.Bench_format.Parse_error { line; message } ->
          Printf.eprintf "cmldft lint: bench parse error at line %d: %s\n" line message;
          2
      | exception Sys_error msg ->
          Printf.eprintf "cmldft lint: %s\n" msg;
          2
      | targets ->
          if json then begin
            let buf = Buffer.create 1024 in
            Buffer.add_string buf "{\"targets\":[";
            List.iteri
              (fun i (name, ds) ->
                if i > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf
                  (Printf.sprintf {|{"target":"%s","report":%s}|} (json_escape name)
                     (String.trim (A.Diagnostic.render_json ds))))
              targets;
            Buffer.add_string buf "]}\n";
            print_string (Buffer.contents buf)
          end
          else
            List.iter
              (fun (name, ds) ->
                Printf.printf "== %s ==\n%s" name (A.Diagnostic.render_text ds))
              targets;
          let all = List.concat_map snd targets in
          if A.Lint.fails ~fail_on all then 1 else 0
  in
  let run files json fail_on rules max_share jobs events =
    apply_jobs jobs;
    let code =
      with_telemetry ~events ~trace:None ~metrics:None @@ fun () ->
      with_run_events ~kind:"lint" @@ fun () -> lint_code files json fail_on rules max_share
    in
    if code <> 0 then exit code
  in
  let doc =
    "Static analysis: electrical rules, DFT-coverage audit and the SCOAP/COP/distance \
     testability metrics."
  in
  let info = Cmd.info "lint" ~doc in
  Cmd.v info
    Term.(const run $ files_arg $ json_arg $ fail_on_arg $ rules_arg $ max_share_arg
          $ jobs_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* plan: COP/SCOAP-guided detector placement *)

let plan_cmd =
  let module A = Cml_analysis in
  let module P = Dft.Placement in
  let file_arg =
    let doc =
      "ISCAS-style $(b,.bench) circuit to plan detectors for (one detector site per \
       non-input net).  Mutually exclusive with $(b,--scenario)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE.bench" ~doc)
  in
  let scenario_arg =
    let doc = "Built-in scenario: $(b,chain) (the paper's buffer chain) or $(b,adder) \
               (the instrumented ripple-carry adder).  The plan is realized on the \
               transistor-level circuit and audited (DFT001-004)." in
    Arg.(value & opt (some (enum [ ("chain", `Chain); ("adder", `Adder) ])) None
         & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let stages_arg =
    Arg.(value & opt int 8 & info [ "n"; "stages" ] ~docv:"N" ~doc:"Chain length.")
  in
  let bits_arg =
    Arg.(value & opt int 4 & info [ "bits" ] ~docv:"N" ~doc:"Adder operand width.")
  in
  let limit_arg =
    let doc = "Nominal per-group detector limit (the paper's margin budget)." in
    Arg.(value & opt int Dft.Derate.nominal_group_limit & info [ "limit" ] ~docv:"N" ~doc)
  in
  let derate_arg =
    let doc =
      "Derate $(b,--limit) for process spread: Monte-Carlo sample the sensor-droop and \
       comparator-offset distributions of the default variation spec and plan against the \
       group size 99.9% of process samples still share safely (about 15 at the nominal 45)."
    in
    Arg.(value & flag & info [ "derate" ] ~doc)
  in
  let samples_arg =
    Arg.(value & opt int 2000 & info [ "samples" ] ~docv:"N" ~doc:"Derating MC samples.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Derating RNG seed.")
  in
  let budget_arg =
    let doc = "Fail (exit 1) when the plan's DFT-transistor overhead exceeds this fraction \
               of the functional transistors, e.g. $(b,0.6)." in
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"FRACTION" ~doc)
  in
  let json_arg =
    let doc = "Write the plan as JSON (schema $(b,cml-dft-plan/1), renderable by \
               $(b,cmldft report)); $(b,-) prints it on stdout instead of the text report." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let bench_sites path =
    let c = Cml_logic.Bench_format.read_file ~path in
    let module C = Cml_logic.Circuit in
    (* same naming contract as the CML compiler (Circuit.net_names),
       so a plan realized on the compiled design resolves by name *)
    let names = C.net_names c in
    let cells = ref [] in
    Array.iteri
      (fun net g -> match g with C.Input _ -> () | _ -> cells := (names.(net), net) :: !cells)
      c.C.gates;
    (c, List.rev !cells)
  in
  let build_adder bits =
    let b = B.create () in
    let operand name v =
      Array.init bits (fun k ->
          B.diff_dc_input b ~name:(Printf.sprintf "%s%d" name k) ~value:((v lsr k) land 1 = 1))
    in
    let a = operand "a" 11 and bv = operand "b" 6 in
    let cin = B.diff_dc_input b ~name:"cin" ~value:false in
    let _ = Cml_cells.Adder.ripple_carry b ~name:"add" ~a ~b:bv ~cin in
    b
  in
  let plan_code file scenario stages bits limit derate samples seed budget json =
    if limit < 1 then begin
      Printf.eprintf "cmldft plan: --limit must be >= 1 (got %d)\n" limit;
      2
    end
    else
      let target =
        match (file, scenario) with
        | Some _, Some _ ->
            Printf.eprintf "cmldft plan: give either FILE.bench or --scenario, not both\n";
            exit 2
        | Some path, None -> `File path
        | None, Some s -> `Scenario s
        | None, None -> `Scenario `Chain
      in
      let effective, derated =
        if derate then begin
          let model =
            Dft.Derate.of_spec ~nominal_limit:limit Cml_defects.Variation.default_spec
          in
          let r = Dft.Derate.effective_limit ~samples ~seed model in
          (r.Dft.Derate.effective, Some r)
        end
        else (limit, None)
      in
      match
        match target with
        | `File path ->
            let circuit, cells = bench_sites path in
            (* realize on the compiled CML design: the compiler names
               cells by the same output-name-or-"n<id>" contract
               [bench_sites] uses, so the optimizer's groups resolve
               directly *)
            let realize groups =
              let design = Cml_cells.Compile.compile circuit in
              let b = design.Cml_cells.Compile.builder in
              (Dft.Insertion.instrument_groups ~groups b, b)
            in
            (circuit, cells, Some realize)
        | `Scenario `Chain ->
            let circuit, cells = P.chain_twin ~stages in
            let realize groups =
              let chain = Cml_cells.Chain.build_dc ~stages ~value:true () in
              let b = chain.Cml_cells.Chain.builder in
              (Dft.Insertion.instrument_groups ~groups b, b)
            in
            (circuit, cells, Some realize)
        | `Scenario `Adder ->
            let circuit, cells = P.adder_twin ~bits in
            let realize groups =
              let b = build_adder bits in
              (Dft.Insertion.instrument_groups ~groups b, b)
            in
            (circuit, cells, Some realize)
      with
      | exception Cml_logic.Bench_format.Parse_error { line; message } ->
          Printf.eprintf "cmldft plan: bench parse error at line %d: %s\n" line message;
          2
      | exception Sys_error msg ->
          Printf.eprintf "cmldft plan: %s\n" msg;
          2
      | circuit, cells, realize ->
          let plan =
            P.optimize ~nominal_limit:limit ~limit:effective (P.sites ~circuit ~cells)
          in
          let diags =
            P.check plan
            @
            match realize with
            | None -> []
            | Some f ->
                let iplan, b = f (P.to_groups plan) in
                Dft.Audit.check ~max_safe_share:effective iplan b
          in
          let diags = A.Diagnostic.sort diags in
          if json = Some "-" then
            print_string (Cml_telemetry.Json.to_string (P.to_json plan))
          else begin
            (match derated with
            | None -> ()
            | Some r ->
                Printf.printf "derated limit: %d -> %d (%d MC samples, %.1f%% confidence)\n"
                  limit r.Dft.Derate.effective r.Dft.Derate.samples
                  (100.0 *. r.Dft.Derate.model.Dft.Derate.confidence));
            print_string (P.render_text plan);
            if diags <> [] then print_string (A.Diagnostic.render_text diags)
          end;
          (match json with
          | None | Some "-" -> ()
          | Some path ->
              P.write_json ~path plan;
              Printf.printf "wrote %s\n" path);
          let over_budget =
            match budget with
            | Some b when plan.P.area_overhead > b ->
                Printf.printf "area overhead %.1f%% exceeds the budget %.1f%%\n"
                  (100.0 *. plan.P.area_overhead) (100.0 *. b);
                true
            | _ -> false
          in
          if over_budget || A.Lint.fails ~fail_on:A.Diagnostic.Error diags then 1 else 0
  in
  let run file scenario stages bits limit derate samples seed budget json jobs trace metrics
      events =
    apply_jobs jobs;
    let code =
      with_telemetry ~events ~trace ~metrics @@ fun () ->
      with_run_events ~kind:"plan" @@ fun () ->
      plan_code file scenario stages bits limit derate samples seed budget json
    in
    if code <> 0 then exit code
  in
  let doc =
    "Optimize detector placement: full-coverage sensor groups under the (optionally \
     process-derated) sharing limit, depth-balanced to minimise read-out area, with \
     COP/SCOAP hardest-net ranking and a machine-readable plan."
  in
  let info = Cmd.info "plan" ~doc in
  Cmd.v info
    Term.(const run $ file_arg $ scenario_arg $ stages_arg $ bits_arg $ limit_arg
          $ derate_arg $ samples_arg $ seed_arg $ budget_arg $ json_arg $ jobs_arg
          $ trace_arg $ metrics_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* watch: live in-place terminal view of a run-event stream *)

let watch_cmd =
  let module Ev = Cml_telemetry.Events in
  let file_arg =
    let doc = "Event stream to follow (JSONL from $(b,--events)); $(b,-) reads stdin." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EVENTS.jsonl" ~doc)
  in
  let once_arg =
    let doc = "Render the stream's final state once and exit (no polling, no redraw)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let read_stdin () =
    let b = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel b stdin 4096
       done
     with End_of_file -> ());
    Buffer.contents b
  in
  (* Read whatever the file holds right now, dropping a trailing
     partial line (the writer flushes whole lines, but a poll can
     still catch one mid-write) and tolerating lines that fail to
     parse for the same reason. *)
  let snapshot_docs path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        let lines = String.split_on_char '\n' text in
        let rec complete = function [] | [ _ ] -> [] | l :: rest -> l :: complete rest in
        Some
          (List.filter_map
             (fun l ->
               let l = String.trim l in
               if l = "" then None
               else
                 match Cml_telemetry.Json.parse l with
                 | j -> Some j
                 | exception Cml_telemetry.Json.Parse_error _ -> None)
             (complete lines))
  in
  let count_lines s =
    String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s
  in
  let live path =
    let last = ref "" in
    let last_lines = ref 0 in
    let redraw st =
      let s = Ev.render_state st in
      if s <> !last then begin
        (* move back over the previous frame and clear to the end, so
           the view updates in place instead of scrolling *)
        if !last_lines > 0 then Printf.printf "\027[%dA\027[J" !last_lines;
        print_string s;
        flush stdout;
        last := s;
        last_lines := count_lines s
      end
    in
    let rec loop () =
      match snapshot_docs path with
      | None ->
          (* stream not created yet: keep waiting for the run *)
          Unix.sleepf 0.2;
          loop ()
      | Some docs ->
          let st = Ev.state_of_events docs in
          redraw st;
          if not st.Ev.w_finished then begin
            Unix.sleepf 0.2;
            loop ()
          end
    in
    loop ()
  in
  let run path once =
    if once then
      let docs =
        if path = "-" then Ev.read_string (read_stdin ())
        else
          match snapshot_docs path with
          | Some docs -> docs
          | None ->
              Printf.eprintf "cmldft watch: cannot read %s\n" path;
              exit 2
      in
      print_string (Ev.render_state (Ev.state_of_events docs))
    else if path = "-" then begin
      Printf.eprintf "cmldft watch: live mode needs a file (use --once to read stdin)\n";
      exit 2
    end
    else live path
  in
  let doc =
    "Follow a run-event stream ($(b,cml-dft-events/1), written by $(b,--events)) as a live \
     in-place terminal view: progress bar with ETA, per-domain lanes, classification and \
     healing histograms so far, utilization table at the end."
  in
  let info = Cmd.info "watch" ~doc in
  Cmd.v info Term.(const run $ file_arg $ once_arg)

(* ------------------------------------------------------------------ *)
(* explain: numerical post-mortem of one campaign variant *)

let explain_cmd =
  let module Tel = Cml_telemetry in
  let file_arg =
    let doc =
      "Finished campaign to explain: a run manifest (from $(b,--manifest)) or a run-events \
       JSONL stream (from $(b,--events))."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let variant_arg =
    let doc = "Explain the variant at this 0-based run index." in
    Arg.(value & opt (some int) None & info [ "variant" ] ~docv:"N" ~doc)
  in
  let defect_arg =
    let doc =
      "Explain the first variant whose name contains $(docv) (case-insensitive), e.g. \
       $(b,--defect 'c-e short')."
    in
    Arg.(value & opt (some string) None & info [ "defect" ] ~docv:"SITE" ~doc)
  in
  let json_arg =
    let doc =
      "Write the post-mortem document (schema $(b,cml-dft-postmortem/1)) to this file, \
       renderable later by $(b,cmldft report); $(b,-) writes the JSON to stdout."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    Arg.(value & opt int 8 & info [ "top" ] ~docv:"N" ~doc:"Rows per blame/hotspot table.")
  in
  let run file variant defect json top jobs events trace metrics =
    apply_jobs jobs;
    with_telemetry ~events ~trace ~metrics @@ fun () ->
    with_run_events ~kind:"explain" @@ fun () ->
    let selection =
      match (variant, defect) with
      | Some _, Some _ ->
          Printf.eprintf "cmldft explain: --variant and --defect are mutually exclusive\n";
          exit 2
      | Some n, None -> Dft.Explain.Nth n
      | None, Some s -> Dft.Explain.Named s
      | None, None -> Dft.Explain.Auto
    in
    match Dft.Explain.explain_path ~top ~selection file with
    | pm -> (
        match json with
        | None -> print_string (Tel.Postmortem.render_text pm)
        | Some "-" -> print_endline (Tel.Json.to_string (Tel.Postmortem.to_json pm))
        | Some path ->
            Tel.Postmortem.write ~path pm;
            Printf.printf "wrote %s (%s)\n" path pm.Tel.Postmortem.pm_variant)
    | exception Dft.Explain.Unexplainable msg ->
        Printf.eprintf "cmldft explain: %s\n" msg;
        exit 2
    | exception Sys_error msg ->
        Printf.eprintf "cmldft explain: %s\n" msg;
        exit 2
    | exception Tel.Json.Parse_error (pos, msg) ->
        Printf.eprintf "cmldft explain: %s: JSON error at offset %d: %s\n" file pos msg;
        exit 2
  in
  let doc =
    "Numerical post-mortem of one campaign variant: pick the slowest or failed variant (or \
     $(b,--variant)/$(b,--defect)), re-simulate it with solver introspection attached, and \
     report the convergence narrative, worst-net/worst-device hotspots, per-rejection LTE \
     blame, Newton retry blame, the dt timeline and the sparse-LU health summary."
  in
  let info = Cmd.info "explain" ~doc in
  Cmd.v info
    Term.(const run $ file_arg $ variant_arg $ defect_arg $ json_arg $ top_arg $ jobs_arg
          $ events_arg $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* report: render manifests / metrics files for humans *)

let report_cmd =
  let module Tel = Cml_telemetry in
  let files_arg =
    let doc =
      "Files to report on: run manifests (from $(b,--manifest)) or metrics snapshots \
       (from $(b,--metrics))."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let top_arg =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Slowest variants to list.")
  in
  let trend_arg =
    let doc =
      "Cross-run trend analysis: classify the given files (and the $(b,.json) files of any \
       given directory) into perf histories ($(b,cml-dft-perf)) and run manifests, then \
       render per-kernel trajectory sparklines with regression flags, the campaign scaling \
       probe against its best-matching (jobs, cores) history, and wall-clock attribution \
       by span group."
    in
    Arg.(value & flag & info [ "trend" ] ~doc)
  in
  let read_stdin () =
    let b = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel b stdin 4096
       done
     with End_of_file -> ());
    Buffer.contents b
  in
  let parse_path path =
    if path = "-" then Tel.Json.parse (read_stdin ()) else Tel.Json.parse_file path
  in
  let report_one ~top path =
    let j = parse_path path in
    match Tel.Manifest.of_json j with
    | m -> print_string (Tel.Manifest.render_text ~top m)
    | exception Tel.Manifest.Bad_manifest _ -> (
        (* not a manifest: a post-mortem, a diagnosis record, then a
           bare metrics snapshot *)
        match Tel.Postmortem.of_json j with
        | pm -> print_string (Tel.Postmortem.render_text pm)
        | exception Tel.Postmortem.Bad_postmortem _ -> (
            match Dft.Diagnose.of_json j with
            | d -> print_string (Dft.Diagnose.render_text d)
            | exception Dft.Diagnose.Bad_diagnosis _ -> (
                match Dft.Placement.of_json j with
                | p -> print_string (Dft.Placement.render_text p)
                | exception Dft.Placement.Bad_plan _ ->
                    let snap = Tel.Metrics.of_json j in
                    if snap = [] then
                      failwith
                        "not a run manifest, post-mortem, diagnosis record, placement plan \
                         or metrics snapshot"
                    else begin
                      Printf.printf "metrics snapshot: %s\n" path;
                      print_string (Tel.Metrics.render_text snap)
                    end)))
  in
  let report_trend files =
    let fail = ref false in
    let expand path =
      if path <> "-" && Sys.file_exists path && Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.sort compare
        |> List.map (Filename.concat path)
      else [ path ]
    in
    let history = ref [] and manifests = ref [] in
    List.iter
      (fun path ->
        match parse_path path with
        | exception Tel.Json.Parse_error (pos, msg) ->
            Printf.eprintf "cmldft report: %s: JSON error at offset %d: %s\n" path pos msg;
            fail := true
        | exception Sys_error msg ->
            Printf.eprintf "cmldft report: %s\n" msg;
            fail := true
        | j -> (
            match Tel.Trend.history_of_json j with
            | _ :: _ as entries -> history := !history @ entries
            | [] -> (
                match Tel.Manifest.of_json j with
                | m -> manifests := !manifests @ [ (path, m) ]
                | exception Tel.Manifest.Bad_manifest _ ->
                    (* not trend material (a plan, a metrics snapshot):
                       skip quietly so globs stay convenient *)
                    ())))
      (List.concat_map expand files);
    print_string (Tel.Trend.render ~history:!history ~manifests:!manifests ());
    if !fail then exit 2
  in
  let run files top trend =
    if trend then report_trend files
    else begin
      let fail = ref false in
      List.iteri
        (fun i path ->
          if i > 0 then print_newline ();
          match report_one ~top path with
          | () -> ()
          | exception Tel.Json.Parse_error (pos, msg) ->
              Printf.eprintf "cmldft report: %s: JSON error at offset %d: %s\n" path pos msg;
              fail := true
          | exception (Sys_error msg | Failure msg) ->
              Printf.eprintf "cmldft report: %s: %s\n" path msg;
              fail := true)
        files;
      if !fail then exit 2
    end
  in
  let doc = "Render run manifests and metrics snapshots (classification histogram, slowest \
             variants, histogram percentiles, span summary); $(b,-) reads from stdin.  \
             With $(b,--trend), cross-run trajectory analysis instead." in
  let info = Cmd.info "report" ~doc in
  Cmd.v info Term.(const run $ files_arg $ top_arg $ trend_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "reproduction of 'DFT Method for CML Digital Circuits' (DATE 1999)" in
  let info = Cmd.info "cmldft" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      chain_cmd; detector_cmd; sharing_cmd; campaign_cmd; diagnose_cmd; area_cmd; mc_cmd;
      logic_cmd; export_cmd; op_cmd; lint_cmd; plan_cmd; watch_cmd; report_cmd; explain_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
