(* Production-style deployment of the DFT scheme: a block of CML
   buffers all monitored by dual-emitter variant-2 sensors sharing a
   single variant-3 read-out (load circuit + hysteresis comparator +
   level shifter), exercised in test mode through the vtest rail.

   Run with:  dune exec examples/bist_readout.exe *)

module S = Cml_dft.Sharing

let show label p =
  Printf.printf "  %-22s vout = %.3f V   vfb = %.3f V   flag = %.3f V\n" label
    p.S.vout p.S.vfb p.S.flag

let () =
  print_endline "=== shared BIST read-out over a 12-gate block ===\n";
  let n = 12 in

  (* fault-free block in test mode *)
  let good = S.build ~multi_emitter:true ~n () in
  let p_good = S.measure_dc good () in
  show "fault-free block:" p_good;

  (* the same block with a pipe defect in gate 7 *)
  let defects =
    [
      ("weak pipe (8 kohm)", Cml_defects.Defect.Pipe { device = "x7.q3"; r = 8e3 });
      ("pipe (4 kohm)", Cml_defects.Defect.Pipe { device = "x7.q3"; r = 4e3 });
      ("strong pipe (1 kohm)", Cml_defects.Defect.Pipe { device = "x7.q3"; r = 1e3 });
    ]
  in
  List.iter
    (fun (label, defect) ->
      let b, faulty = S.build_faulty ~multi_emitter:true ~n ~defect () in
      show (label ^ ":") (S.measure_dc b ~net:faulty ()))
    defects;

  print_endline "\nthe flag output separates good from faulty blocks; one read-out";
  print_endline "(9 devices) serves all 12 gates - and up to the safe sharing limit.\n";

  (* how far can sharing go? (paper Figure 14: 45 gates) *)
  print_endline "fault-free vout versus the number of gates sharing the read-out:";
  let pts = S.sweep_n ~multi_emitter:true ~ns:[ 1; 10; 20; 30; 45; 60 ] () in
  List.iter (fun p -> Printf.printf "  N = %2d : vout = %.4f V, vfb = %.4f V\n" p.S.n p.S.vout p.S.vfb) pts;
  (* measure the comparator's hysteresis (the Figure-12 sweep) and
     apply the paper's safe-sharing criterion: fault-free vout must
     stay above the up-switch threshold *)
  let h = Cml_dft.Experiment.hysteresis () in
  match h.Cml_dft.Experiment.switch_up with
  | None -> print_endline "\n(no comparator switch found)"
  | Some upper ->
      let safe = S.max_safe_sharing pts ~upper_threshold:upper in
      Printf.printf
        "\nsafe sharing limit (largest N with vout above the measured %.3f V\n\
         up-switch threshold): N = %d   (the paper reports 45)\n"
        upper safe
