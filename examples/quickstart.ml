(* Quickstart: build the paper's Figure-1 CML buffer, drive it with a
   100 MHz square wave, run a transient analysis and measure the
   output levels, swing and propagation delay.

   Run with:  dune exec examples/quickstart.exe *)

module B = Cml_cells.Builder
module E = Cml_spice.Engine
module T = Cml_spice.Transient

let () =
  print_endline "=== cml-dft quickstart: one CML buffer ===";
  (* 1. a builder provides the supply rails and the bias line *)
  let builder = B.create () in

  (* 2. differential square-wave stimulus at 100 MHz *)
  let input = B.diff_square_input builder ~name:"vin" ~freq:100e6 () in

  (* 3. the Figure-1 data buffer, plus a second buffer as a
     realistic fanout load *)
  let out = Cml_cells.Buffer_cell.add builder ~name:"x1" ~input in
  let _loaded = Cml_cells.Buffer_cell.add builder ~name:"x2" ~input:out in

  (* 4. compile and run a 20 ns transient *)
  let net = builder.B.net in
  let sim = E.compile net in
  let result = T.run sim net (T.config ~tstop:20e-9 ~max_step:10e-12 ()) in

  (* 5. wrap the traces and measure *)
  let wave nd = Cml_wave.Wave.create result.T.times (T.node_trace result nd) in
  let w_in = wave input.B.p in
  let w_op = wave out.B.p and w_on = wave out.B.n in
  let vlow, vhigh = Cml_wave.Measure.extremes w_op ~t_from:10e-9 in
  Printf.printf "output high level : %.4f V (rail is %.1f V)\n" vhigh 3.3;
  Printf.printf "output low level  : %.4f V\n" vlow;
  Printf.printf "output swing      : %.1f mV (paper: ~250 mV)\n" ((vhigh -. vlow) *. 1e3);

  (* propagation delay measured at the actual differential crossings,
     the paper's Table-2 method *)
  let in_x = Cml_wave.Measure.differential_crossings w_in (wave input.B.n) in
  let out_x = Cml_wave.Measure.differential_crossings w_op w_on in
  (match List.find_opt (fun t -> t > 10e-9) in_x with
  | Some t0 -> (
      match List.find_opt (fun t -> t > t0) out_x with
      | Some t1 -> Printf.printf "gate delay        : %.1f ps (paper: ~53 ps)\n" ((t1 -. t0) *. 1e12)
      | None -> print_endline "gate delay        : (no output crossing)")
  | None -> print_endline "gate delay        : (no input crossing)");

  print_endline "\noutput waveforms (one period):";
  let zoom w = Cml_wave.Wave.sub_range w ~t_from:10e-9 ~t_to:20e-9 in
  print_string
    (Cml_wave.Ascii_plot.render ~height:14 [ ("op", zoom w_op); ("opb", zoom w_on) ])
