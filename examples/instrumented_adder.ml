(* The full deployment story: build a transistor-level 4-bit CML
   adder, let the DFT-insertion pass instrument every gate with
   shared read-outs, verify functionality, then inject a healing
   parametric defect and show the test-mode screen catching and
   localizing it while the adder's outputs remain numerically correct.

   Run with:  dune exec examples/instrumented_adder.exe *)

module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module B = Cml_cells.Builder

let bits = 4

let build a_val b_val =
  let b = B.create () in
  let operand name v =
    Array.init bits (fun k ->
        B.diff_dc_input b ~name:(Printf.sprintf "%s%d" name k) ~value:((v lsr k) land 1 = 1))
  in
  let a = operand "a" a_val and bv = operand "b" b_val in
  let cin = B.diff_dc_input b ~name:"cin" ~value:false in
  let sums, cout = Cml_cells.Adder.ripple_carry b ~name:"add" ~a ~b:bv ~cin in
  (b, sums, cout)

let read_result x sums cout =
  let bit d =
    if E.voltage x d.B.p -. E.voltage x d.B.n > 0.05 then 1 else 0
  in
  Array.to_list (Array.mapi (fun k d -> bit d lsl k) sums)
  |> List.fold_left ( + ) (bit cout lsl bits)

let () =
  print_endline "=== automatic DFT insertion on a 4-bit CML adder ===\n";
  let a_val = 11 and b_val = 6 in
  let builder, sums, cout = build a_val b_val in
  Printf.printf "functional circuit: %d cells, %d devices, %d nodes\n"
    (List.length (B.cells builder))
    (N.device_count builder.B.net) (N.node_count builder.B.net);

  (* instrument: one shared read-out per group of up to 15 gates *)
  let plan = Cml_dft.Insertion.instrument ~max_share:15 builder in
  Printf.printf "instrumented      : %d devices (+%.0f%% overhead), %d read-out group(s)\n"
    (N.device_count builder.B.net)
    (100.0 *. Cml_dft.Insertion.device_overhead plan builder.B.net)
    (List.length plan.Cml_dft.Insertion.groups);

  (* the instrumented adder still adds *)
  let x = E.dc_operating_point (E.compile builder.B.net) in
  Printf.printf "\n%d + %d = %d (read from the analog outputs)\n" a_val b_val
    (read_result x sums cout);

  let show label net =
    Printf.printf "\n%s\n" label;
    List.iter
      (fun r ->
        Printf.printf "  group %d: vfb = %.3f V  -> %s\n" r.Cml_dft.Insertion.group.Cml_dft.Insertion.index
          r.Cml_dft.Insertion.vfb
          (if r.Cml_dft.Insertion.failed then "FAIL" else "pass"))
      (Cml_dft.Insertion.screen plan net)
  in
  show "test-mode screen, defect-free:" builder.B.net;

  (* a healing defect inside full-adder 2 *)
  let defect = Cml_defects.Defect.Pipe { device = "add.fa2.sum.q3"; r = 4e3 } in
  Printf.printf "\ninjecting: %s\n" (Cml_defects.Defect.describe defect);
  let faulty = Cml_defects.Inject.apply builder.B.net defect in
  let xf = E.dc_operating_point (E.compile faulty) in
  Printf.printf "the faulty adder still computes %d + %d = %d - logic testing sees nothing\n"
    a_val b_val (read_result xf sums cout);
  show "test-mode screen, faulty:" faulty;
  let suspects = Cml_dft.Insertion.localize plan faulty in
  Printf.printf "\nsuspect cells (members of failing groups): %d of %d\n" (List.length suspects)
    (List.length (B.cells builder));
  Printf.printf "defective cell %s in the suspect list: %b\n" "add.fa2.sum"
    (List.mem "add.fa2.sum" suspects)
