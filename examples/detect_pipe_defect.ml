(* The paper's story in one example: a collector-emitter pipe on a
   buffer's current-source transistor nearly doubles the output swing,
   but the degraded signal heals after a few stages, so testing at the
   chain output sees nothing — while the built-in amplitude detector
   flags the faulty gate immediately.

   Run with:  dune exec examples/detect_pipe_defect.exe *)

module B = Cml_cells.Builder
module E = Cml_spice.Engine
module T = Cml_spice.Transient

let freq = 100e6

let measure_stage chain net stage =
  let sim = E.compile net in
  let r = T.run sim net (T.config ~tstop:20e-9 ~max_step:10e-12 ()) in
  let out = Cml_cells.Chain.output chain stage in
  let w = Cml_wave.Wave.create r.T.times (T.node_trace r out.B.p) in
  Cml_wave.Measure.extremes w ~t_from:10e-9

let () =
  print_endline "=== a healing CML defect, and how the DFT catches it ===\n";
  let pipe = Cml_defects.Defect.Pipe { device = "x3.q3"; r = 4e3 } in
  Printf.printf "defect: %s (paper Figure 4)\n\n" (Cml_defects.Defect.describe pipe);

  (* 1. show the healing on the bare 8-stage chain *)
  let chain = Cml_cells.Chain.build ~stages:8 ~freq () in
  let golden = chain.Cml_cells.Chain.builder.B.net in
  let faulty = Cml_defects.Inject.apply golden pipe in
  print_endline "stage-by-stage swing (fault-free vs faulty chain):";
  List.iter
    (fun stage ->
      let lo_g, hi_g = measure_stage chain golden stage in
      let lo_f, hi_f = measure_stage chain faulty stage in
      Printf.printf "  stage %d: %.0f mV -> %.0f mV%s\n" stage
        ((hi_g -. lo_g) *. 1e3)
        ((hi_f -. lo_f) *. 1e3)
        (if stage = 3 then "   <- defective gate: swing nearly doubled" else ""))
    [ 2; 3; 4; 5; 8 ];
  print_endline "  => by the chain output the signal is fully restored: stuck-at";
  print_endline "     and delay testing at the primary outputs never see this defect.\n";

  (* 2. attach a variant-1 built-in detector to the faulty gate *)
  let resp ~pipe =
    Cml_dft.Experiment.detector_response
      ~variant:(Cml_dft.Experiment.V1 Cml_dft.Detector.v1_default) ~freq ~pipe ~tstop:80e-9 ()
  in
  let good = resp ~pipe:None in
  let bad = resp ~pipe:(Some 4e3) in
  print_endline "variant-1 built-in detector at the monitored gate:";
  Printf.printf "  fault-free: detector output drop = %.0f mV (quiet)\n"
    (good.Cml_dft.Experiment.vout_drop *. 1e3);
  Printf.printf "  4 kohm pipe: detector output drop = %.0f mV  -> FLAGGED\n"
    (bad.Cml_dft.Experiment.vout_drop *. 1e3);
  (match bad.Cml_dft.Experiment.tstability with
  | Some t -> Printf.printf "  detector settles in about %.0f ns\n" (t *. 1e9)
  | None -> ());
  print_endline "\ndetector output voltage over time (faulty gate):";
  print_string
    (Cml_wave.Ascii_plot.render ~height:12 [ ("vout", bad.Cml_dft.Experiment.vout) ])
