(* Test application for the amplitude detectors (paper section 6.6):
   a fault is only asserted while the defective gate's output toggles,
   so the test plan needs high toggle coverage.  For sequential
   circuits the paper recommends random patterns, relying on the
   initialization-convergence result of its reference [13].

   Run with:  dune exec examples/toggle_test_plan.exe *)

module L = Cml_logic

let () =
  print_endline "=== toggle-based test planning on sequential benchmarks ===\n";
  Printf.printf "%-10s %7s %9s %10s %12s %12s\n" "circuit" "nets" "LFSR-64" "LFSR-256"
    "self-init" "stuck-at";
  List.iter
    (fun (name, c) ->
      let width = List.length c.L.Circuit.inputs in
      let pats count =
        L.Patterns.lfsr_patterns (L.Patterns.lfsr_create ~seed:0xBEEF ()) ~width ~count
      in
      let initial = L.Sim.initial c L.Value.F in
      let cov n = L.Coverage.coverage_after c ~initial ~patterns:(pats n) in
      let self_init = L.Init_convergence.self_initialising c ~patterns:(pats 64) in
      let sa, _, _ = L.Faultsim.coverage c ~initial ~patterns:(pats 64) in
      Printf.printf "%-10s %7d %8.1f%% %9.1f%% %12s %11.1f%%\n" name (L.Circuit.num_nets c)
        (100.0 *. cov 64) (100.0 *. cov 256)
        (if self_init then "yes" else "no")
        (100.0 *. sa))
    (L.Bench_circuits.all ());

  print_endline "\ninitialization convergence from random power-up states";
  print_endline "(reference [13]: circuits converge to a deterministic state):";
  let c = L.Bench_circuits.traffic_fsm () in
  let patterns =
    L.Patterns.lfsr_patterns (L.Patterns.lfsr_create ~seed:77 ()) ~width:1 ~count:24
  in
  let r = L.Init_convergence.analyse c ~patterns ~trials:16 ~seed:5 in
  Printf.printf "  traffic FSM, 16 random initial states: converged = %b" r.L.Init_convergence.converged;
  (match r.L.Init_convergence.convergence_cycle with
  | Some k -> Printf.printf " (after %d cycles)\n" k
  | None -> print_newline ());

  print_endline "\ntoggle coverage growth under random patterns (counter4):";
  let c = L.Bench_circuits.counter ~bits:4 in
  let patterns = L.Patterns.random_patterns ~seed:9 ~width:1 ~count:120 in
  let curve = L.Coverage.curve c ~initial:(L.Sim.initial c L.Value.F) ~patterns in
  let pts = List.map (fun (n, cov) -> (float_of_int n, 100.0 *. cov)) curve in
  print_string (Cml_wave.Ascii_plot.render_xy ~height:12 ~xlabel:"patterns" [ ("coverage %", pts) ])
