(* Regenerate the committed lint fixtures in examples/netlists/.
   Run from the repo root:

     dune exec examples/write_lint_fixtures.exe

   Every deck written here must pass `cmldft lint` with zero errors;
   `make check` relies on that. *)

module B = Cml_cells.Builder

let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "examples/netlists"

let write_deck name net =
  let path = Filename.concat dir name in
  Cml_spice.Netlist_io.write_file ~path net;
  Printf.printf "wrote %s (%d devices)\n" path (Cml_spice.Netlist.device_count net)

let () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let chain3 = Cml_cells.Chain.build ~stages:3 ~freq:100e6 () in
  write_deck "chain3.cir" chain3.Cml_cells.Chain.builder.B.net;
  let chain8 = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  write_deck "chain8.cir" chain8.Cml_cells.Chain.builder.B.net;
  let instrumented = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let (_ : Cml_dft.Insertion.plan) =
    Cml_dft.Insertion.instrument instrumented.Cml_cells.Chain.builder
  in
  write_deck "instrumented_chain8.cir" instrumented.Cml_cells.Chain.builder.B.net;
  let write_bench name circuit =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc (Cml_logic.Bench_format.to_string circuit);
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  write_bench "s27.bench" (Cml_logic.Bench_format.s27 ());
  write_bench "c432_surrogate.bench" (Cml_logic.Bench_circuits.c432_surrogate ())
