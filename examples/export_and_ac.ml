(* Working with circuits as artefacts: export a monitored CML gate to
   the SPICE-flavoured text format, read it back, verify it simulates
   identically, and run a small-signal AC analysis on the comparator
   to see the gain that makes the read-out's positive feedback latch.

   Run with:  dune exec examples/export_and_ac.exe *)

module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module B = Cml_cells.Builder

let () =
  print_endline "=== netlist export / import and AC analysis ===\n";
  (* a buffer with a variant-2 detector *)
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"vin" ~value:true in
  let out = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  let vtest = Cml_dft.Detector.ensure_vtest b 3.7 in
  ignore (Cml_dft.Detector.attach_v2 b ~name:"det" ~outputs:out ~vtest Cml_dft.Detector.v2_default);
  let net = b.B.net in

  let text = Cml_spice.Netlist_io.to_string net in
  Printf.printf "exported deck (%d devices, %d lines):\n" (N.device_count net)
    (List.length (String.split_on_char '\n' text));
  print_string text;

  let back = Cml_spice.Netlist_io.of_string text in
  let v net' =
    let x = E.dc_operating_point (E.compile net') in
    match N.find_node net' "det.vout" with Some nd -> E.voltage x nd | None -> nan
  in
  Printf.printf "\ndetector vout, original netlist : %.4f V\n" (v net);
  Printf.printf "detector vout, re-imported deck : %.4f V\n\n" (v back);

  (* AC: loop gain of the variant-3 comparator, measured open-loop.
     The feedback path (Qb's base normally tied to the vfb node) is
     broken and driven externally at the balance point; the gain from
     that drive back to the vfb node is the regenerative loop gain. *)
  print_endline "comparator loop gain (feedback broken, pair biased at balance):";
  let b2 = B.create () in
  let net2 = b2.B.net in
  let proc = b2.B.proc in
  let model = proc.Cml_cells.Process.bjt in
  let vt2 = Cml_dft.Detector.ensure_vtest b2 3.7 in
  let cfg = Cml_dft.Readout.default_config in
  let _, upper = Cml_dft.Readout.thresholds cfg ~vtest:3.7 in
  let vfb = B.node b2 "vfb" and von = B.node b2 "von" and ce = B.node b2 "ce" in
  let vin_a = B.node b2 "vin_a" and vin_b = B.node b2 "vin_b" in
  let i_tail = proc.Cml_cells.Process.i_tail in
  let r_th = cfg.Cml_dft.Readout.fb_width /. i_tail in
  let r1 = r_th *. 3.7 /. upper in
  let r2 = r1 *. upper /. (3.7 -. upper) in
  N.bjt net2 ~name:"qa" ~model ~c:vfb ~b:vin_a ~e:ce ();
  N.bjt net2 ~name:"qb" ~model ~c:von ~b:vin_b ~e:ce ();
  N.resistor net2 ~name:"r1" vt2 vfb r1;
  N.resistor net2 ~name:"r2" vfb N.gnd r2;
  N.resistor net2 ~name:"rc" vt2 von proc.Cml_cells.Process.r_load;
  B.tail_source b2 ~name:"q3" ce;
  (* balance: both bases at the same level inside the window *)
  let balance = upper -. (i_tail /. 2.0 *. r_th) in
  N.vsource net2 ~name:"va" ~pos:vin_a ~neg:N.gnd (Cml_spice.Waveform.Dc balance);
  N.vsource net2 ~name:"vb" ~pos:vin_b ~neg:N.gnd (Cml_spice.Waveform.Dc balance);
  let sim = E.compile net2 in
  let freqs = [| 1e6; 100e6; 1e9; 10e9; 100e9 |] in
  let pts = Cml_spice.Ac.run sim ~source:"vb" ~freqs in
  List.iter
    (fun p ->
      Printf.printf "  %9.0f MHz : loop gain = %6.3f (%.1f dB)\n"
        (p.Cml_spice.Ac.freq /. 1e6)
        (Cml_spice.Ac.magnitude p vfb)
        (Cml_spice.Ac.gain_db p vfb))
    pts;
  print_endline "\n(a low-frequency loop gain above one makes the closed comparator";
  print_endline " regenerative - the origin of the Fig. 12 hysteresis; the gain";
  print_endline " rolling off past a few GHz bounds how fast the flag can latch)"
